"""Multiprogram tenancy: N kernel streams co-scheduled on one SoC.

The paper's Section 5 fallback - "if the GPU is busy with other work,
run CPU-alone" - presumes *other work exists*.  Every harness entry
point so far ran exactly one application at a time, so the ``gpu_busy``
counter (A26) only ever went high under fault injection.  This module
makes the signal real:

* :class:`TenantSpec` describes one tenant: a workload stream plus its
  arbitration attributes (priority, optional deadline);
* :class:`GpuLeaseArbiter` grants the integrated GPU to one tenant at
  a time.  A tenant that wins the lease keeps it for
  ``lease_quantum`` of its own invocations; denied tenants spill to
  CPU-only execution through the scheduler's own EXIT_GPU_BUSY path
  and queue as waiters.  Two policies:

  - ``fifo``: on release the lease is reserved for the longest-waiting
    denied tenant (bounded starvation: every waiter is served within
    one round of its predecessors' quanta);
  - ``priority``: earliest deadline first, then highest priority, then
    FIFO arrival - losers keep spilling to the CPU (deadline-aware
    energy scheduling in the spirit of Mei et al., see PAPERS.md);

* :class:`TenantSoCView` is the per-tenant window onto the shared
  processor: identical to it in every software-visible way except that
  ``gpu_busy`` also reads *true* while the lease is held elsewhere.
  The scheduler underneath stays completely black-box - it sees a busy
  counter, debounces it, and takes its own Section-5 fallback;
* :func:`run_multiprogram` interleaves the tenants' invocation streams
  round-robin on one simulated SoC (one invocation is one indivisible
  scheduling step, as on real Concord where ``parallel_for`` blocks),
  giving each tenant its own :class:`~repro.core.scheduler.EnergyAwareScheduler`
  (own table G, own decision records) over its own view.

Contention-aware table G: an alpha profiled while the GPU was leased
away reflects a degenerate co-run, not the kernel.  The coordinator
therefore sets each scheduler's ``co_run_context`` per invocation
(``"mpN"`` with N active tenants, ``""`` once the tenant runs solo),
and the scheduler keys table G by it - co-run and solo alphas never
mix.  Everything is deterministic: same tenant mix, policy, and seed
produce byte-identical :meth:`MultiprogramResult.fingerprint` under
either tick mode's reference semantics.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError, SpecError
from repro.obs.observer import Observer
from repro.obs.records import EXIT_GPU_BUSY, DecisionRecord
from repro.runtime.runtime import ConcordRuntime, InvocationResult
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec, haswell_desktop

if TYPE_CHECKING:  # repro.core imports cycle back into repro.runtime
    from repro.core.metrics import EnergyMetric
    from repro.core.scheduler import SchedulerConfig

#: The arbitration policies the lease arbiter implements.
ARBITER_POLICIES: Tuple[str, ...] = ("fifo", "priority")

#: Invocations a lease winner keeps the GPU for before re-arbitration.
DEFAULT_LEASE_QUANTUM = 2

#: Note attached to a tenant's decision record when its EXIT_GPU_BUSY
#: came from the arbiter (as opposed to a fault-injected busy flap).
LEASE_DENIED_NOTE = "lease-denied-by"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a workload stream plus arbitration attributes.

    ``deadline_s`` does double duty (so the priority arbiter and the
    per-SoC objective agree): earliest deadline wins the GPU lease
    first under the ``priority`` policy, and the same value becomes
    the tenant scheduler's per-invocation completion budget via a
    :class:`~repro.core.metrics.ConstrainedMetric` in
    :func:`run_multiprogram`.  A deadline, when present, must be a
    positive finite number - negative, zero, NaN, or infinite values
    would silently build a nonsense arbiter ordering and an
    unsatisfiable (or vacuous) objective, so construction rejects
    them with :class:`~repro.errors.SpecError`.
    """

    name: str
    #: Table-1 workload abbreviation (registry key).
    workload: str
    #: Larger wins ties under the ``priority`` policy.
    priority: int = 0
    #: Simulated-seconds deadline; earliest deadline wins first under
    #: the ``priority`` policy (None = no deadline).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_s is None:
            return
        if (isinstance(self.deadline_s, bool)
                or not isinstance(self.deadline_s, (int, float))
                or not math.isfinite(self.deadline_s)
                or self.deadline_s <= 0):
            raise SpecError(
                f"tenant {self.name!r}: deadline_s must be a positive "
                f"finite number (or None), got {self.deadline_s!r}")


@dataclass(frozen=True)
class TenancySpec:
    """Typed, frozen description of one multiprogram co-scheduling cell.

    Replaces the stringly-typed ``RunSpec.tenancy`` field
    (``"policy;quantum;tenants"``): the arbitration policy, the lease
    quantum, and the tenant roster are real fields, validated at
    construction, hashable, and picklable - so the spec participates
    in engine cache keys through :meth:`canonical_dict` instead of an
    opaque string.  :meth:`parse` accepts the legacy spelling (the
    ``RunSpec`` shim routes old strings through it with a
    ``DeprecationWarning``).
    """

    #: Arbitration policy: one of :data:`ARBITER_POLICIES`.
    policy: str = "fifo"
    #: Invocations a lease winner keeps the GPU for.
    lease_quantum: int = DEFAULT_LEASE_QUANTUM
    #: The tenant roster, in registration (round-robin) order.
    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.policy not in ARBITER_POLICIES:
            raise SchedulingError(
                f"unknown arbitration policy {self.policy!r}; "
                f"expected one of {ARBITER_POLICIES}")
        if int(self.lease_quantum) < 1:
            raise SchedulingError("lease_quantum must be >= 1")
        if not self.tenants:
            raise SchedulingError("tenancy spec needs at least one tenant")
        for tenant in self.tenants:
            if not isinstance(tenant, TenantSpec):
                raise SchedulingError(
                    f"tenants must be TenantSpec instances, got "
                    f"{type(tenant).__name__}")

    @classmethod
    def parse(cls, text: str) -> "TenancySpec":
        """Parse the legacy ``"policy;quantum;tenant-text"`` spelling."""
        parts = text.split(";", 2)
        if len(parts) != 3:
            raise SchedulingError(
                f"bad tenancy string {text!r}; expected "
                "'policy;quantum;tenants' (e.g. 'fifo;2;BS,CC:5')")
        policy, quantum_text, tenant_text = parts
        try:
            quantum = int(quantum_text)
        except ValueError as exc:
            raise SchedulingError(
                f"bad lease quantum {quantum_text!r} in tenancy string "
                f"{text!r}") from exc
        return cls(policy=policy, lease_quantum=quantum,
                   tenants=parse_tenant_specs(tenant_text))

    @property
    def tenant_text(self) -> str:
        """The roster in ``--tenants`` syntax (for display and the
        legacy spelling)."""
        entries = []
        for tenant in self.tenants:
            entry = tenant.workload
            if tenant.deadline_s is not None:
                entry += f":{tenant.priority}:{tenant.deadline_s:g}"
            elif tenant.priority:
                entry += f":{tenant.priority}"
            entries.append(entry)
        return ",".join(entries)

    def legacy_text(self) -> str:
        """The deprecated one-string spelling this spec replaces."""
        return f"{self.policy};{self.lease_quantum};{self.tenant_text}"

    def canonical_dict(self) -> dict:
        """Canonical JSON-ready form for engine cache keys.

        Deliberately identical to what :meth:`parse` of the equivalent
        legacy string produces, so migrating a call site does not
        invalidate its cache entries.
        """
        return {
            "policy": self.policy,
            "lease_quantum": int(self.lease_quantum),
            "tenants": [
                {
                    "name": t.name,
                    "workload": t.workload,
                    "priority": t.priority,
                    "deadline_s": t.deadline_s,
                }
                for t in self.tenants
            ],
        }


@dataclass(frozen=True)
class LeaseEvent:
    """One arbiter transition, in simulated time."""

    t: float
    tenant: str
    #: ``grant`` | ``deny`` | ``release``.
    action: str
    #: Lease holder (or reservation) at the time of the event.
    holder: Optional[str] = None

    def canonical(self) -> str:
        return f"{self.t!r}|{self.tenant}|{self.action}|{self.holder or ''}"


class GpuLeaseArbiter:
    """Grants the integrated GPU to one tenant at a time.

    The protocol is invocation-granular, mirroring how the coordinator
    interleaves tenants: ``begin_invocation`` opens a tenant's step,
    the tenant's :class:`TenantSoCView` calls :meth:`poll` when (and
    only when) its scheduler reads ``gpu_busy``, and
    ``end_invocation`` closes the step and advances the lease quantum.
    ``poll`` is idempotent within one invocation - debounce re-reads
    see the same answer, so the debounce filter keeps rejecting only
    *transient* (fault-injected) flaps, never arbiter decisions.
    """

    def __init__(self, policy: str = "fifo",
                 lease_quantum: int = DEFAULT_LEASE_QUANTUM) -> None:
        if policy not in ARBITER_POLICIES:
            raise SchedulingError(
                f"unknown arbitration policy {policy!r}; "
                f"expected one of {ARBITER_POLICIES}")
        if lease_quantum < 1:
            raise SchedulingError("lease_quantum must be >= 1")
        self.policy = policy
        self.lease_quantum = lease_quantum
        self.events: List[LeaseEvent] = []
        self.grants: Dict[str, int] = {}
        self.denials: Dict[str, int] = {}
        self._tenants: Dict[str, TenantSpec] = {}
        self._holder: Optional[str] = None
        self._held_invocations = 0
        #: Tenant the next lease is reserved for (set on release).
        self._reserved: Optional[str] = None
        #: Waiting tenants -> arrival sequence of their first denial.
        self._waiters: Dict[str, int] = {}
        self._arrival_seq = 0
        self._current: Optional[str] = None
        self._decision: Optional[bool] = None
        self._last_denier: Optional[str] = None

    # -- registration ------------------------------------------------------------

    def register(self, tenant: TenantSpec) -> None:
        if tenant.name in self._tenants:
            raise SchedulingError(f"duplicate tenant name {tenant.name!r}")
        self._tenants[tenant.name] = tenant
        self.grants.setdefault(tenant.name, 0)
        self.denials.setdefault(tenant.name, 0)

    # -- invocation protocol -----------------------------------------------------

    def begin_invocation(self, tenant: str, now: float) -> None:
        if tenant not in self._tenants:
            raise SchedulingError(f"unregistered tenant {tenant!r}")
        if self._current is not None:
            raise SchedulingError(
                f"tenant {self._current!r} still has an invocation open")
        self._current = tenant
        self._decision = None
        self._last_denier = None

    def poll(self, tenant: str, now: float) -> bool:
        """True when ``tenant`` holds (or just acquired) the lease."""
        if tenant != self._current:
            raise SchedulingError(
                f"poll from {tenant!r} outside its invocation "
                f"(current: {self._current!r})")
        if self._decision is not None:
            return self._decision
        if self._holder == tenant:
            granted = True
        elif self._holder is None and self._reserved in (None, tenant):
            self._holder = tenant
            self._held_invocations = 0
            self._reserved = None
            self._waiters.pop(tenant, None)
            granted = True
        else:
            granted = False
        if granted:
            self.grants[tenant] += 1
            self.events.append(LeaseEvent(now, tenant, "grant", tenant))
        else:
            self.denials[tenant] += 1
            if tenant not in self._waiters:
                self._waiters[tenant] = self._arrival_seq
                self._arrival_seq += 1
            self._last_denier = self._holder or self._reserved
            self.events.append(
                LeaseEvent(now, tenant, "deny", self._last_denier))
        self._decision = granted
        return granted

    def denied_this_invocation(self) -> Tuple[bool, Optional[str]]:
        """Whether the open invocation was denied, and by which holder."""
        if self._decision is False:
            return True, self._last_denier
        return False, None

    def end_invocation(self, tenant: str, now: float) -> None:
        if tenant != self._current:
            raise SchedulingError(
                f"end_invocation from {tenant!r} outside its invocation")
        granted = self._decision
        self._current = None
        self._decision = None
        if granted and self._holder == tenant:
            self._held_invocations += 1
            if self._held_invocations >= self.lease_quantum:
                self._release(tenant, now)

    def retire(self, tenant: str, now: float) -> None:
        """Tenant's stream is exhausted: free anything it holds."""
        self._waiters.pop(tenant, None)
        if self._holder == tenant:
            self._release(tenant, now)
        elif self._reserved == tenant:
            self._reserved = self._take_next_waiter()

    # -- internals ---------------------------------------------------------------

    def _release(self, tenant: str, now: float) -> None:
        self._holder = None
        self._held_invocations = 0
        self._reserved = self._take_next_waiter()
        self.events.append(LeaseEvent(now, tenant, "release", self._reserved))

    def _take_next_waiter(self) -> Optional[str]:
        chosen = self._next_waiter()
        if chosen is not None:
            del self._waiters[chosen]
        return chosen

    def _next_waiter(self) -> Optional[str]:
        if not self._waiters:
            return None
        if self.policy == "fifo":
            return min(self._waiters, key=self._waiters.__getitem__)

        def rank(name: str) -> Tuple[float, int, int]:
            tenant = self._tenants[name]
            deadline = (tenant.deadline_s if tenant.deadline_s is not None
                        else float("inf"))
            return (deadline, -tenant.priority, self._waiters[name])

        return min(self._waiters, key=rank)


class TenantSoCView:
    """A tenant's software-visible window onto the shared processor.

    Every attribute delegates to the underlying processor (or
    :class:`~repro.soc.faults.FaultySoC` wrapper), so clocks, MSRs,
    counters, and phase execution are shared SoC state.  Only
    ``gpu_busy`` differs: it is the *logical* A26 - physically busy,
    or leased to another tenant.  The scheduler on top cannot tell the
    difference, which is the point: the Section-5 fallback executes
    against genuine contention with zero scheduler changes.
    """

    def __init__(self, processor, arbiter: GpuLeaseArbiter,
                 tenant: str) -> None:
        self._processor = processor
        self._arbiter = arbiter
        self._tenant = tenant

    @property
    def gpu_busy(self) -> bool:
        if self._processor.gpu_busy:
            return True
        return not self._arbiter.poll(self._tenant, self._processor.now)

    def __getattr__(self, name: str):
        return getattr(self._processor, name)


@dataclass(frozen=True)
class TenantResult:
    """Per-tenant outcome of one multiprogram run."""

    name: str
    workload: str
    priority: int
    invocations: int
    #: Sum of the tenant's invocation durations / software-visible
    #: MSR energies (exact attribution: invocations are serialized).
    time_s: float
    energy_j: float
    #: Arbiter bookkeeping for this tenant.
    lease_grants: int
    lease_denials: int
    #: Invocations that exited through EXIT_GPU_BUSY.
    gpu_busy_exits: int
    results: Tuple[InvocationResult, ...] = ()
    #: Audit payload; excluded from :meth:`canonical` (same contract
    #: as :class:`~repro.harness.chaos.ChaosCell`).
    decisions: Tuple[DecisionRecord, ...] = ()

    def canonical(self) -> str:
        """Byte-stable serialization of every measured quantity."""
        invocations = ";".join(
            f"{r.kernel_name}|{r.n_items!r}|{r.duration_s!r}|{r.energy_j!r}|"
            f"{r.cpu_items!r}|{r.gpu_items!r}|{r.alpha!r}|{','.join(r.notes)}"
            for r in self.results)
        return (f"{self.name}|{self.workload}|{self.priority}|"
                f"{self.invocations}|{self.time_s!r}|{self.energy_j!r}|"
                f"{self.lease_grants}|{self.lease_denials}|"
                f"{self.gpu_busy_exits}|{invocations}")


@dataclass
class MultiprogramResult:
    """Outcome of one multiprogram co-scheduling run."""

    platform: str
    policy: str
    seed: int
    fault_level: float
    lease_quantum: int
    tenants: List[TenantResult]
    lease_events: Tuple[LeaseEvent, ...] = ()
    #: Ground-truth totals over the whole co-run (shared SoC clock and
    #: lifetime MSR, immune to software MSR fault injection).
    total_time_s: float = 0.0
    total_energy_j: float = 0.0
    #: Ground-truth work accounting from the simulator's counters -
    #: the runtime's all-items-processed contract, verified across
    #: every tenant's whole stream.
    items_expected: float = 0.0
    items_processed: float = 0.0

    @property
    def all_items_processed(self) -> bool:
        return abs(self.items_processed - self.items_expected) <= max(
            1e-6 * self.items_expected, 1e-6)

    @property
    def total_gpu_busy_exits(self) -> int:
        return sum(t.gpu_busy_exits for t in self.tenants)

    @property
    def total_lease_denials(self) -> int:
        return sum(t.lease_denials for t in self.tenants)

    def tenant(self, name: str) -> TenantResult:
        for result in self.tenants:
            if result.name == name:
                return result
        raise SchedulingError(f"no tenant named {name!r}")

    def fingerprint(self) -> str:
        """Byte-identical reruns (same mix, policy, seed) hash equal."""
        payload = "\n".join([
            f"{self.platform}|{self.policy}|{self.seed}|"
            f"{self.fault_level!r}|{self.lease_quantum}|"
            f"{self.total_time_s!r}|{self.total_energy_j!r}|"
            f"{self.items_expected!r}|{self.items_processed!r}",
            *(t.canonical() for t in self.tenants),
            *(e.canonical() for e in self.lease_events),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        from repro.harness.report import format_table, heading

        rows = [(t.name, t.workload, t.priority, t.invocations,
                 t.lease_grants, t.lease_denials, t.gpu_busy_exits,
                 t.time_s, t.energy_j)
                for t in self.tenants]
        table = format_table(
            ["tenant", "workload", "prio", "invocations", "grants",
             "denials", "gpu-busy exits", "time (s)", "energy (J)"],
            rows, float_digits=4)
        return "\n".join([
            heading(f"Multiprogram run on {self.platform} "
                    f"(policy={self.policy}, quantum={self.lease_quantum}, "
                    f"seed={self.seed})"),
            table,
            "",
            f"total: {self.total_time_s:.4f} s, "
            f"{self.total_energy_j:.2f} J, "
            f"{len(self.lease_events)} lease events",
            f"all items processed: "
            f"{'PASS' if self.all_items_processed else 'FAIL'}",
            f"fingerprint: {self.fingerprint()}",
        ])


def parse_tenant_specs(text: str) -> Tuple[TenantSpec, ...]:
    """Parse the CLI's ``--tenants`` syntax.

    Comma-separated entries, each ``ABBREV[:priority[:deadline_s]]``,
    e.g. ``"MM,BS"`` or ``"MM:2,BS:0:1.5"``.  Names are assigned
    positionally (``<abbrev>-<index>``), so two tenants may run the
    same workload.

    Deadlines must be positive and finite: ``float()`` happily parses
    ``"-5"``, ``"0"``, ``"nan"``, and ``"inf"``, all of which would
    corrupt the arbiter's earliest-deadline ordering, so entries
    carrying them are rejected with :class:`~repro.errors.SpecError`
    naming the offending entry.
    """
    entries = [e.strip() for e in text.split(",") if e.strip()]
    if not entries:
        raise SchedulingError("empty tenant specification")
    specs = []
    for i, entry in enumerate(entries):
        parts = entry.split(":")
        if len(parts) > 3:
            raise SchedulingError(
                f"bad tenant entry {entry!r}; expected "
                "ABBREV[:priority[:deadline_s]]")
        abbrev = parts[0].strip().upper()
        try:
            priority = int(parts[1]) if len(parts) > 1 else 0
            deadline = float(parts[2]) if len(parts) > 2 else None
        except ValueError as exc:
            raise SchedulingError(f"bad tenant entry {entry!r}: {exc}")
        try:
            specs.append(TenantSpec(name=f"{abbrev}-{i}", workload=abbrev,
                                    priority=priority, deadline_s=deadline))
        except SpecError as exc:
            raise SpecError(f"bad tenant entry {entry!r}: {exc}") from None
    return tuple(specs)


def run_multiprogram(spec: Optional[PlatformSpec] = None,
                     tenants: Sequence[TenantSpec] = (),
                     policy: str = "fifo",
                     seed: int = 0,
                     metric: Optional["EnergyMetric"] = None,
                     tablet: bool = False,
                     fault_level: float = 0.0,
                     fault_config: Optional[FaultConfig] = None,
                     lease_quantum: int = DEFAULT_LEASE_QUANTUM,
                     eas_config: Optional["SchedulerConfig"] = None,
                     observer: Optional[Observer] = None,
                     characterization=None) -> MultiprogramResult:
    """Co-schedule ``tenants`` on one simulated SoC under EAS.

    The tenants' invocation streams interleave round-robin in
    registration order - one ``parallel_for`` invocation is one
    indivisible step, exactly as on real Concord where the call blocks
    the issuing application.  Each tenant gets its own scheduler (own
    table G, own decision stream) over its own
    :class:`TenantSoCView`; the shared :class:`GpuLeaseArbiter` makes
    ``gpu_busy`` real.  Fully deterministic for a fixed (mix, policy,
    seed): there is no wall-clock or OS-thread nondeterminism anywhere
    in the loop.

    ``fault_level > 0`` additionally wraps the shared SoC in the PR-1
    fault-injection substrate, so chaos campaigns can exercise
    contention and hardware faults together.  ``fault_config``
    overrides the level-derived :class:`FaultConfig` with an explicit
    one (the differential harness uses this to run faulted cells with
    MSR read corruption off); ``fault_level`` still stamps the result.
    """
    from repro.core.metrics import EDP, ConstrainedMetric
    from repro.core.scheduler import EnergyAwareScheduler
    from repro.harness.suite import get_characterization
    from repro.workloads.registry import workload_by_abbrev

    spec = spec or haswell_desktop()
    if metric is None:
        metric = EDP
    if not tenants:
        raise SchedulingError("run_multiprogram needs at least one tenant")
    if characterization is None:
        characterization = get_characterization(spec)

    inner = IntegratedProcessor(spec, observer=observer)
    processor = inner
    if fault_config is not None:
        processor = FaultySoC(inner, fault_config)
    elif fault_level > 0.0:
        processor = FaultySoC(
            inner, FaultConfig.from_level(fault_level, seed=seed))
    arbiter = GpuLeaseArbiter(policy=policy, lease_quantum=lease_quantum)

    class _Tenant:
        def __init__(self, ts: TenantSpec) -> None:
            self.spec = ts
            self.workload = workload_by_abbrev(ts.workload)
            self.view = TenantSoCView(processor, arbiter, ts.name)
            self.observer = None
            if observer is not None and observer.enabled:
                self.observer = Observer(metadata={
                    "tenant": ts.name, "workload": ts.workload,
                    "policy": policy})
            self.runtime = ConcordRuntime(self.view, observer=self.observer)
            # A tenant deadline constrains that tenant's own objective:
            # the same deadline_s the arbiter ranks by becomes the
            # scheduler's per-invocation completion budget, so lease
            # priority and the per-SoC alpha search finally agree.
            # Already-constrained or custom metrics pass through as-is.
            tenant_metric = metric
            if (ts.deadline_s is not None
                    and not isinstance(metric, ConstrainedMetric)
                    and metric.custom_fn is None):
                tenant_metric = ConstrainedMetric.constrain(
                    metric, ts.deadline_s)
            self.scheduler = EnergyAwareScheduler(
                characterization, tenant_metric, config=eas_config,
                observer=self.observer)
            self.kernel = self.workload.make_kernel(tablet=tablet)
            self.pending = list(self.workload.invocations(tablet=tablet))
            self.results: List[InvocationResult] = []

    states = []
    for ts in tenants:
        arbiter.register(ts)
        states.append(_Tenant(ts))

    t0 = inner.now
    e0 = inner.msr.lifetime_joules
    counters0 = inner.snapshot_counters()
    expected = sum(inv.n_items for s in states for inv in s.pending)
    active = [s for s in states if s.pending]
    while active:
        context = "" if len(active) == 1 else f"mp{len(active)}"
        for state in list(active):
            name = state.spec.name
            invocation = state.pending.pop(0)
            state.scheduler.co_run_context = context
            arbiter.begin_invocation(name, processor.now)
            decisions_before = len(state.scheduler.decisions)
            result = state.runtime.parallel_for(
                state.kernel, invocation.n_items, state.scheduler)
            denied, denier = arbiter.denied_this_invocation()
            arbiter.end_invocation(name, processor.now)
            state.results.append(result)
            for record in state.scheduler.decisions[decisions_before:]:
                record.tenant = name
                if denied and record.exit_path == EXIT_GPU_BUSY:
                    record.notes.append(
                        f"{LEASE_DENIED_NOTE}:{denier or 'reservation'}")
            if not state.pending:
                arbiter.retire(name, processor.now)
        active = [s for s in states if s.pending]

    tenant_results = []
    for state in states:
        name = state.spec.name
        decisions = tuple(state.scheduler.decisions)
        tenant_results.append(TenantResult(
            name=name,
            workload=state.spec.workload,
            priority=state.spec.priority,
            invocations=len(state.results),
            time_s=sum(r.duration_s for r in state.results),
            energy_j=sum(r.energy_j for r in state.results),
            lease_grants=arbiter.grants[name],
            lease_denials=arbiter.denials[name],
            gpu_busy_exits=sum(1 for d in decisions
                               if d.exit_path == EXIT_GPU_BUSY),
            results=tuple(state.results),
            decisions=decisions,
        ))
        if observer is not None and state.observer is not None:
            state.observer.bind_sim_clock(None)
            observer.set_gauge(f"tenancy.lease_grants.{name}",
                               arbiter.grants[name])
            observer.set_gauge(f"tenancy.lease_denials.{name}",
                               arbiter.denials[name])
            observer.merge_child(state.observer)
    if observer is not None and observer.enabled:
        observer.event("tenancy.run_complete", policy=policy,
                       tenants=len(states),
                       lease_events=len(arbiter.events))

    counters1 = inner.snapshot_counters()
    return MultiprogramResult(
        platform=spec.name,
        policy=policy,
        seed=seed,
        fault_level=fault_level,
        lease_quantum=lease_quantum,
        tenants=tenant_results,
        lease_events=tuple(arbiter.events),
        total_time_s=inner.now - t0,
        total_energy_j=inner.msr.lifetime_joules - e0,
        items_expected=expected,
        items_processed=(counters1.cpu_items - counters0.cpu_items
                         + counters1.gpu_items - counters0.gpu_items),
    )
