"""The shared global work counter of Fig. 7.

The paper's OnlineProfile sets a shared counter to N; CPU workers
"atomically grab work from the shared counter" in chunks while the GPU
proxy thread carves off GPU_PROFILE_SIZE items, and after profiling the
remaining value of the counter is what is partitioned by alpha.  This
is that counter: a thread-safe descending allocator over [0, n).
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

from repro.errors import RuntimeLayerError


class SharedWorkCounter:
    """Thread-safe chunk allocator over an iteration range."""

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise RuntimeLayerError("n_items must be non-negative")
        self._n = n_items
        self._next = 0
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        return self._n

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._n - self._next

    @property
    def dispatched(self) -> int:
        with self._lock:
            return self._next

    def grab(self, chunk: int) -> Optional[Tuple[int, int]]:
        """Atomically claim up to ``chunk`` items; returns [start, stop).

        Returns None once the range is exhausted.
        """
        if chunk <= 0:
            raise RuntimeLayerError("chunk must be positive")
        with self._lock:
            if self._next >= self._n:
                return None
            start = self._next
            stop = min(self._n, start + chunk)
            self._next = stop
            return start, stop

    def grab_all(self) -> Optional[Tuple[int, int]]:
        """Claim everything that remains."""
        with self._lock:
            if self._next >= self._n:
                return None
            start = self._next
            self._next = self._n
            return start, self._n
