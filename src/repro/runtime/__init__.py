"""Concord-like heterogeneous ``parallel_for`` runtime.

The paper implements its scheduler inside Concord, a heterogeneous C++
framework: a data-parallel ``parallel_for`` whose iterations may run on
CPU worker threads (work stealing, TBB-style) or be offloaded in blocks
to the integrated GPU by a dedicated *GPU proxy thread*.

This package reproduces that structure:

* :mod:`repro.runtime.deque` - a Chase-Lev work-stealing deque (a real,
  thread-safe data structure, exercised by the host-execution pool);
* :mod:`repro.runtime.shared_counter` - the shared global work counter
  profiling drains (Fig. 7, OnlineProfile);
* :mod:`repro.runtime.workstealing` - a host-thread work-stealing pool
  used to execute workloads' *real* Python kernels for validation;
* :mod:`repro.runtime.kernel` - the kernel abstraction: a CPU function,
  a GPU ("OpenCL") function and a cost model;
* :mod:`repro.runtime.runtime` - :class:`ConcordRuntime`, which runs
  kernels on the simulated SoC under a pluggable scheduler;
* :mod:`repro.runtime.tenancy` - multiprogram co-scheduling: N tenant
  kernel streams interleaved on one SoC under a GPU lease arbiter,
  which is what makes the ``gpu_busy`` counter (and the scheduler's
  Section-5 fallback) real.
"""

from repro.runtime.deque import ChaseLevDeque
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime, InvocationResult, KernelLaunch
from repro.runtime.shared_counter import SharedWorkCounter
from repro.runtime.tenancy import (
    ARBITER_POLICIES,
    GpuLeaseArbiter,
    LeaseEvent,
    MultiprogramResult,
    TenantResult,
    TenantSoCView,
    TenantSpec,
    parse_tenant_specs,
    run_multiprogram,
)
from repro.runtime.workstealing import WorkStealingPool

__all__ = [
    "ChaseLevDeque",
    "SharedWorkCounter",
    "WorkStealingPool",
    "Kernel",
    "ConcordRuntime",
    "KernelLaunch",
    "InvocationResult",
    "ARBITER_POLICIES",
    "GpuLeaseArbiter",
    "LeaseEvent",
    "MultiprogramResult",
    "TenantResult",
    "TenantSoCView",
    "TenantSpec",
    "parse_tenant_specs",
    "run_multiprogram",
]
