"""The Concord-like runtime: ``parallel_for`` over the simulated SoC.

:class:`ConcordRuntime` owns one simulated processor and executes
kernels on it under a pluggable scheduler.  A :class:`KernelLaunch` is
the per-invocation context handed to the scheduler; it exposes exactly
the primitives Fig. 7 needs:

* :meth:`KernelLaunch.profile_chunk` - one OnlineProfile round: offload
  a GPU chunk from the shared counter, let CPU workers drain the pool
  concurrently, terminate them when the GPU completes, and return the
  timing/counter observations;
* :meth:`KernelLaunch.run_partitioned` - execute the remaining
  iterations with GPU fraction alpha (work-stealing CPU side, one
  contiguous GPU offload block);
* :meth:`KernelLaunch.run_cpu_only` / :meth:`run_gpu_only`.

All observations flow through the software-visible interfaces of the
simulated SoC (clock, energy MSR, performance counters) so schedulers
remain black-box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RuntimeLayerError, SchedulingError
from repro.obs.observer import Observer, resolve
from repro.runtime.kernel import Kernel
from repro.soc.counters import CounterDelta
from repro.soc.simulator import IntegratedProcessor, PhaseRequest, PhaseResult
from repro.soc.work import CostProfile, WorkRegion, split_for_offload


@dataclass(frozen=True)
class ProfileObservation:
    """What one OnlineProfile round measures (Fig. 7 lines 28-35)."""

    #: Wall time of the profiling phase (launch to CPU-worker termination).
    cpu_time_s: float
    #: Proxy-thread view of GPU time (launch start to kernel completion).
    gpu_time_s: float
    cpu_items: float
    gpu_items: float
    counters: CounterDelta
    #: Energy over the phase as read from the MSR.
    energy_j: float

    @property
    def cpu_throughput(self) -> float:
        """R_C: combined CPU items/s during co-execution."""
        if self.cpu_time_s <= 0:
            return 0.0
        return self.cpu_items / self.cpu_time_s

    @property
    def gpu_throughput(self) -> float:
        """R_G: GPU items/s including offload overhead."""
        if self.gpu_time_s <= 0:
            return 0.0
        return self.gpu_items / self.gpu_time_s


@dataclass
class InvocationResult:
    """Software-visible outcome of one ``parallel_for`` invocation."""

    kernel_name: str
    n_items: float
    duration_s: float
    energy_j: float
    cpu_items: float
    gpu_items: float
    #: Final GPU offload ratio applied to the post-profiling remainder
    #: (None for single-device runs decided without an alpha).
    alpha: Optional[float] = None
    profiled: bool = False
    profile_rounds: int = 0
    #: Time spent inside profiling phases.
    profiling_time_s: float = 0.0
    notes: List[str] = field(default_factory=list)


class KernelLaunch:
    """Execution context for one kernel invocation on one processor."""

    def __init__(self, processor: IntegratedProcessor, kernel: Kernel,
                 n_items: float, cost_profile: CostProfile) -> None:
        if n_items <= 0:
            raise RuntimeLayerError("n_items must be positive")
        self.processor = processor
        self.kernel = kernel
        self.n_items = float(n_items)
        self.cost_profile = cost_profile
        #: Next unprocessed item (the shared counter's low-water mark).
        self._next_item = 0.0
        self._phases: List[PhaseResult] = []

    # -- queries -----------------------------------------------------------------

    @property
    def remaining_items(self) -> float:
        """N_rem: items still in the shared pool."""
        return max(0.0, self.n_items - self._next_item)

    @property
    def phases(self) -> List[PhaseResult]:
        return list(self._phases)

    @property
    def is_done(self) -> bool:
        return self.remaining_items <= 1e-9

    # -- scheduler primitives -------------------------------------------------------

    def profile_chunk(self, gpu_chunk_items: float) -> ProfileObservation:
        """One OnlineProfile round.

        Offloads ``gpu_chunk_items`` from the shared counter to the
        GPU; CPU workers drain the pool concurrently and are terminated
        the moment the GPU chunk completes.
        """
        if self.is_done:
            raise SchedulingError("profiling an exhausted launch")
        gpu_chunk_items = min(gpu_chunk_items, self.remaining_items)
        if gpu_chunk_items <= 0:
            raise SchedulingError("profile chunk must be positive")
        gpu_lo = self._next_item
        gpu_hi = gpu_lo + gpu_chunk_items
        gpu_region = WorkRegion.for_span(self.cost_profile, self.n_items,
                                         gpu_lo, gpu_hi)
        cpu_region = WorkRegion.for_span(self.cost_profile, self.n_items,
                                         gpu_hi, self.n_items)
        msr_before = self.processor.read_energy_msr()
        result = self.processor.run_phase(PhaseRequest(
            cost=self.kernel.cost, cpu_region=cpu_region,
            gpu_region=gpu_region, stop_when_gpu_done=True))
        msr_after = self.processor.read_energy_msr()
        self._phases.append(result)
        # GPU consumed its whole chunk; the CPU drained a prefix of the
        # rest before being terminated.
        self._next_item = gpu_hi + cpu_region.items_done
        return ProfileObservation(
            cpu_time_s=result.duration_s,
            gpu_time_s=result.gpu_time_s,
            cpu_items=result.cpu_items,
            gpu_items=result.gpu_items,
            counters=result.counters,
            energy_j=self.processor.energy_joules_between(msr_before, msr_after),
        )

    def run_partitioned(self, alpha: float) -> PhaseResult:
        """Execute all remaining iterations with GPU offload ratio alpha."""
        if not 0.0 <= alpha <= 1.0:
            raise SchedulingError(f"alpha {alpha} outside [0, 1]")
        if self.is_done:
            raise SchedulingError("launch already complete")
        if alpha == 0.0:
            return self._run_single(gpu=False)
        if alpha == 1.0:
            return self._run_single(gpu=True)
        gpu_region, cpu_region = split_for_offload(
            self.cost_profile, self.n_items, self._next_item, self.n_items, alpha)
        result = self.processor.run_phase(PhaseRequest(
            cost=self.kernel.cost, cpu_region=cpu_region, gpu_region=gpu_region))
        self._phases.append(result)
        self._next_item = self.n_items
        return result

    def run_cpu_only(self) -> PhaseResult:
        return self._run_single(gpu=False)

    def run_gpu_only(self) -> PhaseResult:
        return self._run_single(gpu=True)

    def _run_single(self, gpu: bool) -> PhaseResult:
        if self.is_done:
            raise SchedulingError("launch already complete")
        region = WorkRegion.for_span(self.cost_profile, self.n_items,
                                     self._next_item, self.n_items)
        request = PhaseRequest(
            cost=self.kernel.cost,
            cpu_region=None if gpu else region,
            gpu_region=region if gpu else None)
        result = self.processor.run_phase(request)
        self._phases.append(result)
        self._next_item = self.n_items
        return result


class ConcordRuntime:
    """Owns one simulated processor; runs kernels under a scheduler."""

    def __init__(self, processor: IntegratedProcessor,
                 observer: Optional[Observer] = None) -> None:
        self.processor = processor
        self.observer = resolve(observer)
        # Spans and events opened under this runtime carry simulated
        # timestamps from its processor's clock.
        self.observer.bind_sim_clock(lambda: processor.now)
        self._profiles: dict = {}

    def _cost_profile(self, kernel: Kernel) -> CostProfile:
        """Cache the irregularity profile per kernel (it is a property
        of the kernel's input, identical across invocations)."""
        profile = self._profiles.get(kernel.key)
        if profile is None:
            profile = CostProfile(kernel.cost)
            self._profiles[kernel.key] = profile
        return profile

    def parallel_for(self, kernel: Kernel, n_items: float,
                     scheduler: "SchedulerProtocol") -> InvocationResult:
        """Run one kernel invocation to completion under ``scheduler``.

        Wraps the scheduler's execution with software-visible time and
        MSR energy measurements, exactly as an evaluation harness on
        real hardware would.
        """
        launch = KernelLaunch(self.processor, kernel, n_items,
                              self._cost_profile(kernel))
        t0 = self.processor.now
        msr0 = self.processor.read_energy_msr()
        obs = self.observer
        if obs.enabled:
            obs.inc("runtime.invocations")
            with obs.span("runtime.parallel_for", kernel=kernel.name,
                          n_items=n_items):
                record = scheduler.execute(launch)
        else:
            record = scheduler.execute(launch)
        if not launch.is_done:
            raise SchedulingError(
                f"scheduler {type(scheduler).__name__} left "
                f"{launch.remaining_items:.0f} items unprocessed")
        msr1 = self.processor.read_energy_msr()
        if obs.enabled:
            obs.observe("runtime.invocation_s", self.processor.now - t0)
        cpu_items = sum(p.cpu_items for p in launch.phases)
        gpu_items = sum(p.gpu_items for p in launch.phases)
        return InvocationResult(
            kernel_name=kernel.name,
            n_items=n_items,
            duration_s=self.processor.now - t0,
            energy_j=self.processor.energy_joules_between(msr0, msr1),
            cpu_items=cpu_items,
            gpu_items=gpu_items,
            alpha=record.alpha,
            profiled=record.profiled,
            profile_rounds=record.profile_rounds,
            profiling_time_s=record.profiling_time_s,
            notes=list(record.notes),
        )


class SchedulerProtocol:
    """Structural interface schedulers implement (see repro.core)."""

    def execute(self, launch: KernelLaunch) -> "SchedulerRecord":
        raise NotImplementedError


@dataclass
class SchedulerRecord:
    """What a scheduler reports back about one invocation."""

    alpha: Optional[float]
    profiled: bool = False
    profile_rounds: int = 0
    profiling_time_s: float = 0.0
    notes: List[str] = field(default_factory=list)
