"""Kernel abstraction.

A Concord ``parallel_for`` site compiles into two artifacts: the CPU
function executed by worker threads and an OpenCL kernel for the GPU.
Our :class:`Kernel` mirrors that: an optional pair of *real* Python
implementations (used for correctness validation and the examples) plus
the :class:`~repro.soc.cost_model.KernelCostModel` that drives the SoC
simulator's timing and power.

The kernel's ``key`` plays the role of the CPU function pointer ``f``
in Fig. 7: it indexes the scheduler's global alpha table G across
invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import RuntimeLayerError
from repro.soc.cost_model import KernelCostModel

#: Real CPU implementation: body(lo, hi) executes items [lo, hi).
CpuFn = Callable[[int, int], None]
#: Real "OpenCL" implementation: body(lo, hi) executes items [lo, hi).
GpuFn = Callable[[int, int], None]


@dataclass
class Kernel:
    """One data-parallel kernel: identity, cost model, optional bodies."""

    name: str
    cost: KernelCostModel
    cpu_fn: Optional[CpuFn] = None
    gpu_fn: Optional[GpuFn] = None
    #: Table-G key; defaults to the kernel name.
    key: Optional[str] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise RuntimeLayerError("kernel needs a name")
        if self.key is None:
            self.key = self.name

    def execute_cpu(self, lo: int, hi: int) -> None:
        """Run the real CPU body over items [lo, hi)."""
        if self.cpu_fn is None:
            raise RuntimeLayerError(f"kernel {self.name} has no CPU body")
        self.cpu_fn(lo, hi)

    def execute_gpu(self, lo: int, hi: int) -> None:
        """Run the real GPU body over items [lo, hi).

        Falls back to the CPU body when no distinct GPU body exists
        (Concord generates both from the same loop body).
        """
        if self.gpu_fn is not None:
            self.gpu_fn(lo, hi)
        elif self.cpu_fn is not None:
            self.cpu_fn(lo, hi)
        else:
            raise RuntimeLayerError(f"kernel {self.name} has no executable body")

    @property
    def has_real_body(self) -> bool:
        return self.cpu_fn is not None or self.gpu_fn is not None
