"""Chase-Lev work-stealing deque.

The classical lock-free owner/thief deque from Chase & Lev, "Dynamic
circular work-stealing deque" (SPAA'05), as used by TBB-style runtimes
including the paper's Concord runtime: the owner pushes and pops at the
bottom; thieves steal from the top.

CPython cannot express the C11 atomics the lock-free original relies
on, so the steal path uses a small lock while preserving the algorithm's
structure and its owner-side fast path (owner pop does not take the
lock unless it races a thief for the last element).  The semantics -
LIFO for the owner, FIFO for thieves, every pushed item popped or
stolen exactly once - are what the runtime layer and its tests rely on.
"""

from __future__ import annotations

import threading
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class ChaseLevDeque(Generic[T]):
    """Owner/thief work-stealing deque with a growable circular buffer."""

    _EMPTY_SENTINEL = object()

    def __init__(self, initial_capacity: int = 64) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        self._buffer: List[Optional[T]] = [None] * capacity
        self._mask = capacity - 1
        self._top = 0      # thieves steal here
        self._bottom = 0   # owner pushes/pops here
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return max(0, self._bottom - self._top)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def _grow(self) -> None:
        old = self._buffer
        old_mask = self._mask
        new_capacity = len(old) * 2
        new_buffer: List[Optional[T]] = [None] * new_capacity
        for i in range(self._top, self._bottom):
            new_buffer[i & (new_capacity - 1)] = old[i & old_mask]
        self._buffer = new_buffer
        self._mask = new_capacity - 1

    # -- owner operations ------------------------------------------------------

    def push(self, item: T) -> None:
        """Owner-side push at the bottom."""
        if self._bottom - self._top >= len(self._buffer):
            with self._lock:
                self._grow()
        self._buffer[self._bottom & self._mask] = item
        self._bottom += 1

    def pop(self) -> Optional[T]:
        """Owner-side LIFO pop; None when empty.

        Mirrors the Chase-Lev owner pop: reserve the bottom slot, then
        arbitrate with thieves only when taking the last element.
        """
        b = self._bottom - 1
        self._bottom = b
        t = self._top
        if b < t:
            # Deque was empty; undo.
            self._bottom = t
            return None
        item = self._buffer[b & self._mask]
        if b > t:
            # More than one element: no race possible with thieves.
            self._buffer[b & self._mask] = None
            return item
        # Exactly one element: race against thieves under the lock.
        with self._lock:
            t = self._top
            if t <= b:
                # We won: claim the last element.
                self._top = t + 1
                self._bottom = self._top
                self._buffer[b & self._mask] = None
                return item
            # A thief took it first.
            self._bottom = self._top
            return None

    # -- thief operations ---------------------------------------------------------

    def steal(self) -> Optional[T]:
        """Thief-side FIFO steal from the top; None when empty."""
        with self._lock:
            t = self._top
            if t >= self._bottom:
                return None
            item = self._buffer[t & self._mask]
            self._top = t + 1
            return item

    def drain(self) -> List[T]:
        """Owner-side convenience: pop everything that remains."""
        items: List[T] = []
        while True:
            item = self.pop()
            if item is None:
                return items
            items.append(item)
