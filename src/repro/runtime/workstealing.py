"""Host-thread work-stealing pool.

Executes a workload's *real* Python kernel function over an iteration
range using per-worker Chase-Lev deques with random stealing - the
structure of the paper's Concord CPU runtime.  This pool runs actual
computation on the host (used to validate workload implementations and
in the examples); the *timing and power* of CPU execution are always
taken from the SoC simulator, never from host wall-clock.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import RuntimeLayerError
from repro.obs.observer import Observer, resolve
from repro.runtime.deque import ChaseLevDeque

#: Iteration ranges are split into chunks of this many items before
#: being dealt to worker deques.
DEFAULT_CHUNK = 256

Range = Tuple[int, int]


class WorkStealingPool:
    """A pool of worker threads with per-worker deques and stealing."""

    def __init__(self, num_workers: int = 4, chunk: int = DEFAULT_CHUNK,
                 seed: int = 0, observer: Optional[Observer] = None) -> None:
        if num_workers < 1:
            raise RuntimeLayerError("num_workers must be >= 1")
        if chunk < 1:
            raise RuntimeLayerError("chunk must be >= 1")
        self.num_workers = num_workers
        self.chunk = chunk
        self._seed = seed
        self.observer = resolve(observer)

    def _deal(self, start: int, stop: int) -> List[ChaseLevDeque[Range]]:
        """Split [start, stop) into chunks dealt round-robin to deques."""
        deques: List[ChaseLevDeque[Range]] = [
            ChaseLevDeque() for _ in range(self.num_workers)]
        worker = 0
        pos = start
        while pos < stop:
            end = min(stop, pos + self.chunk)
            deques[worker].push((pos, end))
            worker = (worker + 1) % self.num_workers
            pos = end
        return deques

    def run(self, body: Callable[[int, int], None], start: int, stop: int,
            stop_event: Optional[threading.Event] = None) -> List[Range]:
        """Execute ``body(lo, hi)`` over every chunk of [start, stop).

        Workers pop their own deque LIFO and steal FIFO from random
        victims when empty.  If ``stop_event`` is set mid-run, workers
        abandon unprocessed chunks (this is how OnlineProfile
        "terminates CPU workers" when the GPU chunk completes).
        Returns the list of chunk ranges actually executed.
        """

        def indexed(wid: int, lo: int, hi: int) -> None:
            body(lo, hi)

        executed_lists = self._run(indexed, start, stop, stop_event)
        return sorted(r for worker in executed_lists for r in worker)

    def _run(self, indexed_body: Callable[[int, int, int], None],
             start: int, stop: int,
             stop_event: Optional[threading.Event]) -> List[List[Range]]:
        """Worker loop shared by :meth:`run` and :meth:`map_reduce`.

        ``indexed_body(wid, lo, hi)`` additionally receives the worker
        index, so callers can keep per-worker state without
        synchronization.  Returns the per-worker executed chunk lists.
        """
        if stop < start:
            raise RuntimeLayerError(f"bad range [{start}, {stop})")
        deques = self._deal(start, stop)
        errors: List[BaseException] = []
        # Per-worker executed lists and steal tallies, merged only
        # after the join: the hot loop takes no locks.
        executed_lists: List[List[Range]] = [[] for _ in range(self.num_workers)]
        steals = [0] * self.num_workers

        def worker_main(wid: int) -> None:
            rng = random.Random(self._seed * 1000003 + wid)
            own = deques[wid]
            executed = executed_lists[wid]
            misses = 0
            while misses < 2 * self.num_workers:
                if stop_event is not None and stop_event.is_set():
                    return
                item = own.pop()
                if item is None:
                    victim = rng.randrange(self.num_workers)
                    item = deques[victim].steal()
                    if item is not None:
                        steals[wid] += 1
                if item is None:
                    misses += 1
                    continue
                misses = 0
                try:
                    indexed_body(wid, item[0], item[1])
                except BaseException as exc:  # propagate to caller
                    errors.append(exc)
                    if stop_event is not None:
                        stop_event.set()
                    return
                executed.append(item)

        threads = [threading.Thread(target=worker_main, args=(w,), daemon=True)
                   for w in range(self.num_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs = self.observer
        if obs.enabled:
            obs.inc("ws.runs")
            obs.inc("ws.chunks_executed",
                    sum(len(worker) for worker in executed_lists))
            obs.inc("ws.steals", sum(steals))
        if errors:
            raise errors[0]
        return executed_lists

    def map_reduce(self, body: Callable[[int, int], object],
                   combine: Callable[[object, object], object],
                   start: int, stop: int, initial: object) -> object:
        """Run ``body`` over chunks and fold the per-chunk results.

        Each worker folds its own chunks into a private partial - no
        locks in the hot loop - and the partials are folded into
        ``initial`` after the join.  ``combine`` must be associative
        and commutative: chunk-to-worker assignment is
        scheduling-dependent.
        """
        empty = object()
        partials: List[object] = [empty] * self.num_workers

        def wrapped(wid: int, lo: int, hi: int) -> None:
            value = body(lo, hi)
            partials[wid] = (value if partials[wid] is empty
                             else combine(partials[wid], value))

        self._run(wrapped, start, stop, None)
        acc = initial
        for partial in partials:
            if partial is not empty:
                acc = combine(acc, partial)
        return acc


def coverage_is_complete(executed: Sequence[Range], start: int, stop: int) -> bool:
    """True iff the executed chunk ranges exactly tile [start, stop)."""
    pos = start
    for lo, hi in sorted(executed):
        if lo != pos:
            return False
        pos = hi
    return pos == stop
