"""Black-box energy-aware scheduling for integrated CPU-GPU systems.

A complete reproduction of Barik et al., *A Black-Box Approach to
Energy-Aware Scheduling on Integrated CPU-GPU Systems* (CGO 2016):
the EAS scheduler, its Concord-style runtime, a calibrated simulator
of the paper's two platforms, the twelve evaluation benchmarks, and a
harness regenerating every table and figure.

Typical usage::

    from repro import (
        EDP, EnergyAwareScheduler, get_characterization,
        haswell_desktop, run_application,
    )

    platform = haswell_desktop()
    curves = get_characterization(platform)     # one-time per processor
    scheduler = EnergyAwareScheduler(curves, EDP)
    result = run_application(platform, workload, scheduler, "EAS")

The full blessed import surface lives in :mod:`repro.api` (everything
there is re-exported here); ``tests/test_public_api.py`` pins it.

Subpackages:

* :mod:`repro.soc` - the simulated integrated CPU-GPU package;
* :mod:`repro.runtime` - the work-stealing ``parallel_for`` runtime;
* :mod:`repro.core` - the paper's contribution (characterization,
  classification, T(alpha), the EAS algorithm, baselines);
* :mod:`repro.workloads` - benchmarks and micro-benchmarks;
* :mod:`repro.harness` - experiments, sweeps and figure regenerators;
* :mod:`repro.obs` - the observability layer (tracing, metrics,
  decision audit records; see docs/OBSERVABILITY.md).
"""

from repro.api import *  # noqa: F401,F403 - the curated surface
from repro.api import __all__ as _api_all

__version__ = "1.1.0"

__all__ = ["__version__", *_api_all]
