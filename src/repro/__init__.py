"""Black-box energy-aware scheduling for integrated CPU-GPU systems.

A complete reproduction of Barik et al., *A Black-Box Approach to
Energy-Aware Scheduling on Integrated CPU-GPU Systems* (CGO 2016):
the EAS scheduler, its Concord-style runtime, a calibrated simulator
of the paper's two platforms, the twelve evaluation benchmarks, and a
harness regenerating every table and figure.

Typical usage::

    from repro import (
        EDP, EnergyAwareScheduler, get_characterization,
        haswell_desktop, run_application,
    )

    platform = haswell_desktop()
    curves = get_characterization(platform)     # one-time per processor
    scheduler = EnergyAwareScheduler(curves, EDP)
    result = run_application(platform, workload, scheduler, "EAS")

Subpackages:

* :mod:`repro.soc` - the simulated integrated CPU-GPU package;
* :mod:`repro.runtime` - the work-stealing ``parallel_for`` runtime;
* :mod:`repro.core` - the paper's contribution (characterization,
  classification, T(alpha), the EAS algorithm, baselines);
* :mod:`repro.workloads` - benchmarks and micro-benchmarks;
* :mod:`repro.harness` - experiments, sweeps and figure regenerators.
"""

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    StaticAlphaScheduler,
)
from repro.core.characterization import PlatformCharacterization
from repro.core.metrics import ED2, EDP, ENERGY, EnergyMetric, metric_by_name
from repro.core.scheduler import EasConfig, EnergyAwareScheduler
from repro.errors import ReproError
from repro.harness.experiment import ApplicationRun, run_application
from repro.harness.suite import evaluate_suite, get_characterization, sweep_alphas
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec, baytrail_tablet, haswell_desktop
from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.registry import all_workloads, workload_by_abbrev

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # metrics
    "EnergyMetric", "ENERGY", "EDP", "ED2", "metric_by_name",
    # platforms & simulator
    "PlatformSpec", "haswell_desktop", "baytrail_tablet",
    "IntegratedProcessor", "KernelCostModel",
    # runtime
    "Kernel", "ConcordRuntime",
    # schedulers
    "EnergyAwareScheduler", "EasConfig", "CpuOnlyScheduler",
    "GpuOnlyScheduler", "StaticAlphaScheduler", "ProfiledPerfScheduler",
    # characterization
    "PlatformCharacterization", "get_characterization",
    # workloads
    "Workload", "InvocationSpec", "all_workloads", "workload_by_abbrev",
    # harness
    "ApplicationRun", "run_application", "sweep_alphas", "evaluate_suite",
]
