"""Fleet topology: which simulated SoCs exist, and in what mix.

A fleet is *declared*, not built: :class:`FleetSpec` is a frozen,
canonically serializable value (node count, desktop fraction, clock
mode, per-node EAS metric, seed) and :meth:`FleetSpec.nodes` expands
it deterministically.  Platform kinds interleave evenly through the
index space (not in blocks), so index-order policies like round-robin
see a representative mix from the first few dispatches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.metrics import metric_by_name
from repro.errors import HarnessError
from repro.soc.carbon import CarbonSpec
from repro.soc.spec import (
    TICK_MODES,
    PlatformSpec,
    baytrail_tablet,
    haswell_desktop,
)

#: The node classes a fleet mixes.  Every node of a class runs the
#: same :class:`~repro.soc.spec.PlatformSpec`, which is what lets the
#: engine dedupe their cells fleet-wide.
PLATFORM_KINDS: Tuple[str, ...] = ("desktop", "tablet")


@dataclass(frozen=True)
class NodeSpec:
    """One node of the fleet: an index plus its platform class."""

    index: int
    platform_kind: str

    def __post_init__(self) -> None:
        if self.platform_kind not in PLATFORM_KINDS:
            raise HarnessError(
                f"unknown platform kind {self.platform_kind!r}; "
                f"expected one of {PLATFORM_KINDS}")
        if self.index < 0:
            raise HarnessError("node index must be >= 0")

    @property
    def name(self) -> str:
        """Stable node id, used to tag decision records and outcomes."""
        return f"{self.platform_kind}-{self.index:04d}"


@dataclass(frozen=True)
class FleetSpec:
    """Frozen description of one heterogeneous fleet."""

    n_nodes: int = 64
    #: Fraction of nodes that are ``haswell_desktop`` class; the rest
    #: are ``baytrail_tablet`` class.
    desktop_fraction: float = 0.5
    #: Simulator clock mode every node runs under (explicit - the
    #: fleet never touches the deprecated process-global default).
    tick_mode: str = "exact"
    #: Per-node EAS objective metric (the node layer stays black-box;
    #: the fleet only picks *where*, the node picks *how*).
    metric: str = "edp"
    seed: int = 2016
    #: Grid carbon-intensity signal the fleet operates under (None =
    #: carbon-blind dispatch).  Nodes map onto the signal's regions
    #: round-robin by index.
    carbon: Optional[CarbonSpec] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise HarnessError("fleet needs at least one node")
        if not 0.0 <= self.desktop_fraction <= 1.0:
            raise HarnessError("desktop_fraction must be in [0, 1]")
        if self.tick_mode not in TICK_MODES:
            raise HarnessError(f"tick_mode {self.tick_mode!r} not in "
                               f"{TICK_MODES}")
        metric_by_name(self.metric)  # fail fast with did-you-mean
        if self.carbon is not None and not isinstance(self.carbon,
                                                      CarbonSpec):
            raise HarnessError("fleet carbon must be a CarbonSpec or None")

    def nodes(self) -> Tuple[NodeSpec, ...]:
        """The node roster, platform kinds evenly interleaved.

        Node ``i`` is a desktop exactly when the running desktop quota
        ``floor((i+1) * fraction)`` advances at ``i`` - the standard
        Bresenham interleave, so any prefix of the fleet holds the
        declared mix to within one node.
        """
        f = self.desktop_fraction
        return tuple(
            NodeSpec(index=i,
                     platform_kind=("desktop"
                                    if math.floor((i + 1) * f)
                                    > math.floor(i * f)
                                    else "tablet"))
            for i in range(self.n_nodes))

    def platform_spec(self, platform_kind: str) -> PlatformSpec:
        """The :class:`PlatformSpec` one node class executes on."""
        if platform_kind == "desktop":
            return haswell_desktop(tick_mode=self.tick_mode)
        if platform_kind == "tablet":
            return baytrail_tablet(tick_mode=self.tick_mode)
        raise HarnessError(f"unknown platform kind {platform_kind!r}; "
                           f"expected one of {PLATFORM_KINDS}")

    def canonical(self) -> str:
        base = (f"{self.n_nodes}|{self.desktop_fraction!r}|{self.tick_mode}"
                f"|{self.metric}|{self.seed}")
        # Appended only when set: carbon-blind fleets keep their
        # pre-existing canonical form (golden fingerprints).
        if self.carbon is not None:
            base += f"|carbon|{self.carbon.canonical()}"
        return base
