"""Fleet cells: one node-class execution profile per (platform, kernel).

Every node of one platform class is the *same* simulated SoC, and the
per-node EAS run is deterministic - so "run workload W on node 731"
and "run W on node 88 of the same class" are byte-identical
simulations.  The dispatcher therefore never simulates per node: it
submits one ``fleet-cell`` :class:`~repro.harness.engine.RunSpec` per
distinct (platform class, workload) pair and the engine's
content-addressed cache dedupes the rest - a thousand-node fleet costs
as many simulations as it has distinct cells.

The profile it extracts is strictly software-visible (wall-clock of
the run, MSR-readable energy, the scheduler's own final alpha and
decision records): the fleet layer sees what a deployment agent could
measure, never simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import HarnessError
from repro.obs.observer import Observer
from repro.obs.records import DecisionRecord
from repro.workloads.registry import workload_by_abbrev


@dataclass(frozen=True)
class FleetCellProfile:
    """Measured end-to-end profile of one (platform class, workload).

    ``decisions`` carries the node-local EAS audit trail; it is
    deliberately excluded from :meth:`canonical` (fingerprints cover
    outcomes, audit payloads ride alongside - same contract as the
    chaos campaign's cells).
    """

    platform: str
    platform_kind: str
    workload: str
    tick_mode: str
    #: Wall-clock (simulated) seconds for one full request.
    time_s: float
    #: Software-visible package energy for one full request, joules.
    energy_j: float
    #: The EAS scheduler's converged GPU offload ratio.
    final_alpha: Optional[float]
    invocations: int
    decisions: Tuple[DecisionRecord, ...] = ()

    def canonical(self) -> str:
        alpha = "" if self.final_alpha is None else repr(self.final_alpha)
        return (f"{self.platform}|{self.platform_kind}|{self.workload}"
                f"|{self.tick_mode}|{self.time_s!r}|{self.energy_j!r}"
                f"|{alpha}|{self.invocations}")


def run_fleet_cell(spec, observer: Optional[Observer] = None
                   ) -> FleetCellProfile:
    """Execute one fleet cell (the ``fleet-cell`` worker entry point).

    ``spec`` is a :class:`~repro.harness.engine.RunSpec` of kind
    ``fleet-cell``: EAS (per the spec's scheduler) running the full
    workload on the spec's platform, exactly like an application run -
    the node layer stays the paper's black-box pipeline.
    """
    from repro.harness.engine import KIND_FLEET_CELL
    from repro.harness.experiment import run_application
    from repro.harness.suite import get_characterization

    if spec.kind != KIND_FLEET_CELL:
        raise HarnessError(f"run_fleet_cell got a {spec.kind!r} spec")
    workload = workload_by_abbrev(spec.workload)
    characterization = None
    if spec.scheduler.kind == "eas":
        characterization = get_characterization(spec.platform)
    scheduler = spec.scheduler.build(characterization)
    run = run_application(spec.platform, workload, scheduler,
                          strategy_name=spec.scheduler.strategy_name,
                          tablet=spec.tablet, observer=observer)
    return FleetCellProfile(
        platform=spec.platform.name,
        platform_kind="tablet" if spec.tablet else "desktop",
        workload=spec.workload,
        tick_mode=spec.platform.tick_mode,
        time_s=run.time_s,
        energy_j=run.energy_j,
        final_alpha=run.final_alpha,
        invocations=run.invocations,
        decisions=tuple(getattr(scheduler, "decisions", ())))
