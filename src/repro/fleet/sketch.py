"""Streaming latency quantiles at fixed memory: a log-bucket sketch.

The reference dispatcher materializes every latency and answers
percentile queries with a full ``sorted()`` pass - O(requests) memory
and O(n log n) time, hopeless at millions of requests.  This sketch
answers the same nearest-rank queries from a *fixed* array of
logarithmic buckets:

* **Error bound.**  Bucket ``i`` covers ``[m * g^i, m * g^(i+1))``
  with ``m = min_value`` and growth ``g = (1 + rel_err)**2``; a query
  returns the bucket's geometric midpoint ``m * g^(i+0.5)``, clamped
  to the exact observed ``[min, max]``.  Any value in the bucket is
  within a factor ``sqrt(g) = 1 + rel_err`` of the midpoint, so the
  **relative error is at most rel_err** (1% by default) for every
  value in ``[min_value, max_value]``.  Values below ``min_value``
  (sub-microsecond latencies, by default) are floored to the first
  bucket: the bound there degrades to the *absolute* floor
  ``min_value``.  Values above ``max_value`` saturate the last bucket
  the same way.
* **Order independence.**  Bucket counts are commutative, so the
  sketch is insertion-order independent - the streaming dispatcher
  inserts in dispatch order while the reference observes completion
  order, and both must agree.  (This is why a P^2-style estimator,
  whose state depends on insertion order, is unusable here.)
* **Exact moments.**  ``count``, ``sum``, ``min`` and ``max`` are
  tracked exactly, so means and extremes carry no sketch error.

Memory: ~1500 int64 buckets at the 1% default over the 1e-6..1e7 s
span - ~12 KiB regardless of request count.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import HarnessError

__all__ = ["LatencySketch"]


class LatencySketch:
    """Fixed-memory log-bucket quantile sketch (see module docstring).

    ``quantile(pct)`` mirrors the reference nearest-rank definition
    (``rank = max(1, ceil(pct/100 * count))``), so the sketched value
    estimates exactly the order statistic the reference reports.
    """

    def __init__(self, rel_err: float = 0.01,
                 min_value: float = 1e-6,
                 max_value: float = 1e7) -> None:
        if not 0.0 < rel_err < 1.0:
            raise HarnessError("sketch rel_err must be in (0, 1)")
        if not 0.0 < min_value < max_value:
            raise HarnessError("need 0 < min_value < max_value")
        self.rel_err = rel_err
        self.min_value = min_value
        self.max_value = max_value
        self._growth = (1.0 + rel_err) ** 2
        self._log_growth = math.log(self._growth)
        self._n_buckets = 1 + int(math.ceil(
            math.log(max_value / min_value) / self._log_growth))
        self._counts = np.zeros(self._n_buckets, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _indices(self, values: np.ndarray) -> np.ndarray:
        clipped = np.maximum(values, self.min_value)
        idx = np.floor(
            np.log(clipped / self.min_value) / self._log_growth
        ).astype(np.int64)
        return np.clip(idx, 0, self._n_buckets - 1)

    def add(self, value: float) -> None:
        """Insert one observation."""
        self.add_batch(np.asarray([value], dtype=np.float64))

    def add_batch(self, values: np.ndarray) -> None:
        """Insert a block of observations (one bincount pass)."""
        if len(values) == 0:
            return
        values = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(values)):
            raise HarnessError("sketch values must be finite")
        self._counts += np.bincount(self._indices(values),
                                    minlength=self._n_buckets)
        self.count += len(values)
        self.sum += float(np.sum(values))
        self.min = min(self.min, float(np.min(values)))
        self.max = max(self.max, float(np.max(values)))

    @property
    def mean(self) -> float:
        """Exact mean (tracked moments carry no sketch error)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, pct: float) -> float:
        """Nearest-rank percentile estimate, 0.0 on an empty sketch."""
        if not 0.0 < pct <= 100.0:
            raise HarnessError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        bucket = int(np.searchsorted(np.cumsum(self._counts), rank))
        midpoint = self.min_value * self._growth ** (bucket + 0.5)
        # Clamping to the exact extremes can only shrink the error:
        # the true order statistic lies inside [min, max].
        return min(max(midpoint, self.min), self.max)
