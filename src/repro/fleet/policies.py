"""Placement policies: which node gets the kernel.

The policy surface is deliberately *fleet-visible only*
(:class:`FleetView`): node platform class, per-node queue backlog, and
shared per-(class, workload) summaries accumulated from *completed*
requests - the fleet-level analogue of the paper's table G.  No policy
reads simulator internals or un-completed results; ``energy_aware``
has to learn the energy asymmetry between node classes the same way a
deployment would, by observing finished work (with one outstanding
probe per unknown class so cold-start exploration is bounded).

Five policies (:data:`PLACEMENT_POLICIES`):

* ``random`` - seeded uniform choice over eligible nodes (the
  baseline the acceptance benchmark beats);
* ``round_robin`` - cycling cursor over the node index space;
* ``least_loaded`` - minimum queue backlog, lowest index on ties;
* ``energy_aware`` - cheapest observed energy class, least-loaded
  node within it, spilling to the overall least-loaded node when the
  cheap class backs up past a few service times;
* ``deadline_aware`` - among classes predicted to make the request's
  deadline, the lowest-energy one; otherwise earliest predicted
  finish.

Every policy is deterministic given (fleet, trace, seed): ``random``
derives its stream from the fleet seed, the rest are pure functions of
the view.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError, UnknownNameError, closest_names
from repro.fleet.topology import NodeSpec
from repro.workloads.registry import workload_by_abbrev

#: The placement policies :func:`make_policy` builds.
PLACEMENT_POLICIES: Tuple[str, ...] = (
    "random", "round_robin", "least_loaded", "energy_aware",
    "deadline_aware")

#: ``energy_aware`` spills off its preferred class when that class's
#: best backlog exceeds the alternative's by this many observed mean
#: service times.
SPILL_SERVICE_FACTOR = 4.0

#: XOR salt decorrelating :class:`RandomPolicy`'s stream from the
#: trace generator's (both are seeded from the fleet seed).  Shared
#: with the streaming dispatcher, which must replay the exact same
#: draw sequence.
RANDOM_POLICY_SALT = 0x9E3779B9


@dataclass
class CellStats:
    """Fleet-visible summary of completed (class, workload) requests."""

    count: int = 0
    total_time_s: float = 0.0
    total_energy_j: float = 0.0

    @property
    def mean_time_s(self) -> float:
        # Zero-count guard: a cell with no completed requests (empty
        # trace, or every dispatch spilled elsewhere) reports zero
        # mean rather than raising ZeroDivisionError mid-dispatch.
        return self.total_time_s / self.count if self.count else 0.0

    @property
    def mean_energy_j(self) -> float:
        return self.total_energy_j / self.count if self.count else 0.0


class FleetView:
    """The signals a placement policy may read - nothing else.

    Owned and mutated by the dispatcher (clock advance, backlog
    updates, completion accounting); policies get a read-only
    protocol: eligibility, backlogs, observed summaries, in-flight
    counts.
    """

    def __init__(self, nodes: Sequence[NodeSpec]) -> None:
        self.nodes: Tuple[NodeSpec, ...] = tuple(nodes)
        self.now: float = 0.0
        #: Fleet-clock instant each node's queue drains, by index.
        self.free_at: List[float] = [0.0] * len(self.nodes)
        self._kind_nodes: Dict[str, Tuple[int, ...]] = {}
        for node in self.nodes:
            self._kind_nodes.setdefault(node.platform_kind, ())
        for kind in self._kind_nodes:
            self._kind_nodes[kind] = tuple(
                n.index for n in self.nodes if n.platform_kind == kind)
        self._stats: Dict[Tuple[str, str], CellStats] = {}
        self._in_flight: Dict[Tuple[str, str], int] = {}
        self._eligible_kinds: Dict[str, Tuple[str, ...]] = {}
        self._eligible_nodes: Dict[str, Tuple[int, ...]] = {}

    # -- topology & eligibility --------------------------------------------------

    def platform_kind(self, index: int) -> str:
        return self.nodes[index].platform_kind

    def eligible_kinds(self, workload: str) -> Tuple[str, ...]:
        """Node classes (present in this fleet) that can run ``workload``."""
        cached = self._eligible_kinds.get(workload)
        if cached is None:
            spec = workload_by_abbrev(workload)
            cached = tuple(
                kind for kind in ("desktop", "tablet")
                if self._kind_nodes.get(kind)
                and (kind == "desktop" or spec.tablet_supported))
            self._eligible_kinds[workload] = cached
        return cached

    def eligible_nodes(self, workload: str) -> Tuple[int, ...]:
        cached = self._eligible_nodes.get(workload)
        if cached is None:
            cached = tuple(
                i for kind in self.eligible_kinds(workload)
                for i in self._kind_nodes[kind])
            self._eligible_nodes[workload] = cached
        return cached

    def is_eligible(self, index: int, workload: str) -> bool:
        return self.nodes[index].platform_kind in self.eligible_kinds(workload)

    # -- load --------------------------------------------------------------------

    def backlog_s(self, index: int) -> float:
        """Queued work ahead of a new arrival on this node, seconds."""
        return max(0.0, self.free_at[index] - self.now)

    def least_loaded(self, indices: Sequence[int]) -> int:
        """Minimum backlog; the first of equals in ``indices`` wins
        (deterministic for any fixed candidate order)."""
        best = indices[0]
        best_backlog = self.backlog_s(best)
        for i in indices[1:]:
            backlog = self.backlog_s(i)
            if backlog < best_backlog:
                best, best_backlog = i, backlog
        return best

    def least_loaded_of_kind(self, kind: str, workload: str) -> int:
        return self.least_loaded(self._kind_nodes[kind])

    # -- shared summaries (the fleet's table G) ----------------------------------

    def observed(self, kind: str, workload: str) -> Optional[CellStats]:
        """Summary of *completed* requests for this cell, or None."""
        return self._stats.get((kind, workload))

    def in_flight(self, kind: str, workload: str) -> int:
        return self._in_flight.get((kind, workload), 0)

    # -- dispatcher-side mutation ------------------------------------------------

    def note_dispatch(self, index: int, workload: str,
                      t_complete: float) -> None:
        kind = self.platform_kind(index)
        self.free_at[index] = t_complete
        key = (kind, workload)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1

    def note_completion(self, index: int, workload: str, time_s: float,
                        energy_j: float) -> None:
        kind = self.platform_kind(index)
        key = (kind, workload)
        self._in_flight[key] = self._in_flight.get(key, 1) - 1
        stats = self._stats.setdefault(key, CellStats())
        stats.count += 1
        stats.total_time_s += time_s
        stats.total_energy_j += energy_j


# -- the policies ----------------------------------------------------------------

class PlacementPolicy:
    """One placement strategy; ``place`` returns (node index, reason)."""

    name = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        raise NotImplementedError


class RandomPolicy(PlacementPolicy):
    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        # Decorrelated from the trace generator's stream.
        self._rng = random.Random(seed ^ RANDOM_POLICY_SALT)

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        eligible = view.eligible_nodes(request.workload)
        return eligible[self._rng.randrange(len(eligible))], "uniform"


class RoundRobinPolicy(PlacementPolicy):
    name = "round_robin"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._cursor = 0

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        n = len(view.nodes)
        for step in range(n):
            index = (self._cursor + step) % n
            if view.is_eligible(index, request.workload):
                self._cursor = index + 1
                return index, "cursor"
        raise HarnessError(
            f"no node in this fleet can run workload {request.workload!r}")


class LeastLoadedPolicy(PlacementPolicy):
    name = "least_loaded"

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        index = view.least_loaded(view.eligible_nodes(request.workload))
        return index, f"backlog={view.backlog_s(index):.3f}s"


class EnergyAwarePolicy(PlacementPolicy):
    name = "energy_aware"

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        workload = request.workload
        kinds = view.eligible_kinds(workload)
        known = sorted(
            (view.observed(kind, workload).mean_energy_j, kind)
            for kind in kinds if view.observed(kind, workload) is not None)
        # Bounded exploration: at most one outstanding probe per
        # unknown class, so a slow class cannot swallow a burst before
        # its first completion reports back.
        for kind in kinds:
            if (view.observed(kind, workload) is None
                    and view.in_flight(kind, workload) == 0):
                return (view.least_loaded_of_kind(kind, workload),
                        f"probe:{kind}")
        if not known:
            index = view.least_loaded(view.eligible_nodes(workload))
            return index, "cold-start"
        energy, best_kind = known[0]
        index = view.least_loaded_of_kind(best_kind, workload)
        if len(kinds) > 1:
            # Spill once the cheap class backs up past a few service
            # times: latency is traded, energy preference is not a
            # starvation policy.
            alternatives = [view.least_loaded_of_kind(kind, workload)
                            for kind in kinds if kind != best_kind]
            alt = view.least_loaded(alternatives)
            threshold = (SPILL_SERVICE_FACTOR
                         * view.observed(best_kind, workload).mean_time_s)
            if view.backlog_s(index) > view.backlog_s(alt) + threshold:
                return alt, f"spill:{view.platform_kind(alt)}"
        return index, f"energy:{best_kind}={energy:.2f}J"


class DeadlineAwarePolicy(PlacementPolicy):
    name = "deadline_aware"

    def place(self, view: FleetView, request) -> Tuple[int, str]:
        workload = request.workload
        candidates = []
        for kind in view.eligible_kinds(workload):
            index = view.least_loaded_of_kind(kind, workload)
            stats = view.observed(kind, workload)
            # Optimistic-zero for unseen cells: the first completion
            # replaces hope with a measurement.
            service = stats.mean_time_s if stats is not None else 0.0
            energy = stats.mean_energy_j if stats is not None else 0.0
            finish = view.now + view.backlog_s(index) + service
            candidates.append((finish, energy, kind, index))
        absolute_deadline = request.t_arrival_s + request.deadline_s
        feasible = [c for c in candidates if c[0] <= absolute_deadline]
        if feasible:
            finish, energy, kind, index = min(
                feasible, key=lambda c: (c[1], c[0], c[2]))
            return index, f"feasible:{kind}"
        finish, energy, kind, index = min(
            candidates, key=lambda c: (c[0], c[2]))
        return index, f"best-effort:{kind}"


_POLICY_CLASSES = {
    RandomPolicy.name: RandomPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    EnergyAwarePolicy.name: EnergyAwarePolicy,
    DeadlineAwarePolicy.name: DeadlineAwarePolicy,
}


def make_policy(name: str, seed: int = 0) -> PlacementPolicy:
    """Build a placement policy by name (did-you-mean on misses)."""
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown placement policy {name!r}; expected one of "
            f"{PLACEMENT_POLICIES}",
            suggestions=closest_names(name, list(PLACEMENT_POLICIES))
        ) from None
    return cls(seed=seed)
