"""Fleet subcommand: ``python -m repro fleet``.

Examples::

    python -m repro fleet --nodes 64 --trace bursty --policy all
    python -m repro fleet --nodes 1000 --trace diurnal --policy energy_aware \\
        --tick-mode fast --jobs 4
    python -m repro fleet --nodes 32 --policy random,energy_aware \\
        --duration 30 --rate 2 --tick-mode fast --fingerprint-only

Routes a seeded arrival trace across a mixed desktop/tablet fleet
under one or more placement policies and prints the per-policy
accounting plus a byte-stable fingerprint (identical on reruns and at
any ``--jobs N``; see docs/FLEET.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.errors import HarnessError, UnknownNameError, closest_names
from repro.fleet.dispatcher import (
    DISPATCH_MODES,
    compare_fleet_policies,
    run_fleet,
)
from repro.fleet.topology import FleetSpec
from repro.fleet.trace import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_TRACE_WORKLOADS,
    TRACE_KINDS,
    TraceSpec,
)
from repro.fleet.policies import PLACEMENT_POLICIES
from repro.harness.engine import ExecutionEngine, ResultCache
from repro.soc.spec import TICK_MODES


def _parse_policies(text: str) -> List[str]:
    if text == "all":
        return list(PLACEMENT_POLICIES)
    policies = [p.strip() for p in text.split(",") if p.strip()]
    if not policies:
        raise HarnessError("--policy needs at least one policy name")
    for policy in policies:
        if policy not in PLACEMENT_POLICIES:
            raise UnknownNameError(
                f"unknown placement policy {policy!r}; expected one of "
                f"{PLACEMENT_POLICIES} or 'all'",
                suggestions=closest_names(policy, list(PLACEMENT_POLICIES)))
    return policies


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Dispatch a seeded arrival trace across a simulated "
                    "fleet of desktop/tablet SoCs under pluggable "
                    "placement policies.")
    parser.add_argument("--nodes", type=int, default=64, metavar="N",
                        help="fleet size (default: 64)")
    parser.add_argument("--desktop-fraction", type=float, default=0.5,
                        metavar="F",
                        help="fraction of nodes that are desktop class "
                             "(default: 0.5; the rest are tablet class)")
    parser.add_argument("--policy", default="energy_aware",
                        metavar="P[,P...]",
                        help="placement policy, comma-separated list, or "
                             f"'all' (choices: {', '.join(PLACEMENT_POLICIES)}"
                             "; default: energy_aware)")
    parser.add_argument("--trace", choices=TRACE_KINDS, default="bursty",
                        help="arrival-trace family (default: bursty)")
    parser.add_argument("--duration", type=float, default=60.0, metavar="S",
                        help="trace duration, fleet-clock seconds "
                             "(default: 60)")
    parser.add_argument("--rate", type=float, default=4.0, metavar="HZ",
                        help="mean arrival rate, requests/second "
                             "(default: 4)")
    parser.add_argument("--workloads",
                        default=",".join(DEFAULT_TRACE_WORKLOADS),
                        metavar="W[,W...]",
                        help="workload mix by Table-1 abbreviation "
                             f"(default: {','.join(DEFAULT_TRACE_WORKLOADS)})")
    parser.add_argument("--seed", type=int, default=2016,
                        help="seed for trace generation and the random "
                             "policy (default: 2016)")
    parser.add_argument("--metric", default="edp",
                        help="per-node EAS objective metric "
                             "(default: edp)")
    parser.add_argument("--tick-mode", choices=TICK_MODES, default="exact",
                        help="node simulator clock mode (default: exact)")
    parser.add_argument("--dispatch-mode", choices=DISPATCH_MODES,
                        default="reference",
                        help="dispatch implementation: the per-request "
                             "reference loop or the chunked streaming "
                             "pipeline (identical placement decisions; "
                             "default: reference)")
    parser.add_argument("--chunk-size", type=int,
                        default=DEFAULT_CHUNK_SIZE, metavar="N",
                        help="requests per streaming chunk "
                             f"(default: {DEFAULT_CHUNK_SIZE}; streaming "
                             "mode only)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for cell simulations "
                             "(default: 1 = serial; fingerprints are "
                             "byte-identical at any N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed run-result "
                             "cache entirely")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root for characterizations and run "
                             "results")
    parser.add_argument("--fingerprint-only", action="store_true",
                        help="print only 'policy fingerprint' lines "
                             "(CI-friendly)")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        raise HarnessError("--jobs must be >= 1")
    policies = _parse_policies(args.policy)
    fleet = FleetSpec(n_nodes=args.nodes,
                      desktop_fraction=args.desktop_fraction,
                      tick_mode=args.tick_mode, metric=args.metric,
                      seed=args.seed)
    trace = TraceSpec(kind=args.trace, duration_s=args.duration,
                      mean_rate_hz=args.rate,
                      workloads=tuple(
                          w.strip() for w in args.workloads.split(",")
                          if w.strip()),
                      seed=args.seed)
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(os.path.join(args.cache_dir, "runs"))
    else:
        cache = ResultCache.from_env()
    engine = ExecutionEngine(jobs=args.jobs, cache=cache)

    started = time.perf_counter()
    if len(policies) == 1:
        result = run_fleet(fleet, trace, policy=policies[0], engine=engine,
                           dispatch_mode=args.dispatch_mode,
                           chunk_size=args.chunk_size)
        if args.fingerprint_only:
            print(f"{result.policy} {result.fingerprint()}")
        else:
            print(result.render())
    else:
        comparison = compare_fleet_policies(fleet, trace, policies=policies,
                                            engine=engine,
                                            dispatch_mode=args.dispatch_mode,
                                            chunk_size=args.chunk_size)
        if args.fingerprint_only:
            for result in comparison.results:
                print(f"{result.policy} {result.fingerprint()}")
            print(f"combined {comparison.fingerprint()}")
        else:
            print(comparison.render())
    if not args.fingerprint_only:
        print(f"\n[fleet dispatched in {time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
