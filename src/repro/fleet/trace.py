"""Seeded open-loop arrival traces: the fleet's stand-in for traffic.

Three generator families, all driven by one ``random.Random(seed)``
(Mersenne Twister - platform-stable), so a :class:`TraceSpec` maps to
exactly one request sequence forever:

* ``diurnal`` - a non-homogeneous Poisson process whose rate follows a
  one-period sinusoid over the trace (the classic day/night curve),
  sampled by thinning;
* ``bursty`` - a background Poisson stream plus seeded burst clusters:
  each burst is a cloud of near-simultaneous requests for *one* hot
  workload (a cache-stampede / hot-content shape);
* ``adversarial`` - synchronized thundering-herd waves: every wave
  lands a block of identical-workload requests at *exactly* the same
  instant with the tightest deadline, plus a thin background trickle.
  Built to stress tie-breaking, hotspot collapse, and deadline
  accounting in the dispatcher.

Requests carry a *relative* deadline (a latency budget from arrival);
the dispatcher turns it absolute.  Request ids are positional in
arrival order, so the trace itself is part of the fleet fingerprint.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import HarnessError
from repro.workloads.registry import workload_by_abbrev

#: The arrival-trace families :func:`generate_trace` implements.
TRACE_KINDS: Tuple[str, ...] = ("diurnal", "bursty", "adversarial")

#: Default request mix: tablet-supported workloads with strongly
#: asymmetric per-platform energy (MB and MM are far cheaper on the
#: tablet, BS far cheaper on the desktop), so placement quality is
#: visible in the fleet totals.
DEFAULT_TRACE_WORKLOADS: Tuple[str, ...] = ("MB", "MM", "RT", "BS")

#: Diurnal swing: rate(t) = mean * (1 + AMP * sin(...)), so the peak
#: runs at (1+AMP)x the mean and the trough at (1-AMP)x.
_DIURNAL_AMPLITUDE = 0.8
#: Bursty split: this fraction of the load arrives in bursts, the rest
#: as background Poisson.
_BURST_LOAD_FRACTION = 0.6
#: Mean requests per burst (geometric-ish, via an exponential draw).
_BURST_MEAN_SIZE = 12.0
#: Seconds a burst's requests are smeared over.
_BURST_WINDOW_S = 0.5
#: Adversarial split: fraction of the load arriving in synchronized
#: waves (the rest is the background trickle).
_WAVE_LOAD_FRACTION = 0.8
_N_WAVES = 8


@dataclass(frozen=True)
class FleetRequest:
    """One kernel request in the arrival stream."""

    #: Positional id in arrival order (ties broken by generation
    #: order), so the id sequence is itself deterministic.
    req_id: int
    #: Arrival time on the fleet clock, seconds.
    t_arrival_s: float
    #: Table-1 workload abbreviation.
    workload: str
    #: Relative latency budget: the request misses its deadline when
    #: completion exceeds ``t_arrival_s + deadline_s``.
    deadline_s: float

    def canonical(self) -> str:
        return (f"{self.req_id}|{self.t_arrival_s!r}|{self.workload}"
                f"|{self.deadline_s!r}")


@dataclass(frozen=True)
class TraceSpec:
    """Frozen description of one arrival trace (seed included).

    Hashable and canonically serializable: the trace participates in
    the :meth:`~repro.fleet.dispatcher.FleetResult.fingerprint`
    through :meth:`canonical`, never through the expanded request
    list.
    """

    kind: str = "bursty"
    duration_s: float = 60.0
    #: Long-run average arrival rate, requests/second (each family
    #: redistributes the same total load in its own shape).
    mean_rate_hz: float = 4.0
    workloads: Tuple[str, ...] = DEFAULT_TRACE_WORKLOADS
    seed: int = 2016
    #: Relative-deadline budget range, drawn uniformly per request
    #: (adversarial waves always use the tight end).
    deadline_lo_s: float = 30.0
    deadline_hi_s: float = 120.0

    def __post_init__(self) -> None:
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if self.kind not in TRACE_KINDS:
            raise HarnessError(f"unknown trace kind {self.kind!r}; "
                               f"expected one of {TRACE_KINDS}")
        if self.duration_s <= 0.0:
            raise HarnessError("trace duration_s must be positive")
        if self.mean_rate_hz <= 0.0:
            raise HarnessError("trace mean_rate_hz must be positive")
        if not self.workloads:
            raise HarnessError("trace needs at least one workload")
        for abbrev in self.workloads:
            workload_by_abbrev(abbrev)  # fail fast with did-you-mean
        if not 0.0 < self.deadline_lo_s <= self.deadline_hi_s:
            raise HarnessError("need 0 < deadline_lo_s <= deadline_hi_s")

    def canonical(self) -> str:
        return (f"{self.kind}|{self.duration_s!r}|{self.mean_rate_hz!r}"
                f"|{','.join(self.workloads)}|{self.seed}"
                f"|{self.deadline_lo_s!r}|{self.deadline_hi_s!r}")

    def requests(self) -> Tuple[FleetRequest, ...]:
        return generate_trace(self)


@dataclass
class _Draft:
    """A request before ids are assigned (generation order retained)."""

    t: float
    workload: str
    deadline_s: float
    order: int = field(default=0)


def _finalize(drafts: List[_Draft]) -> Tuple[FleetRequest, ...]:
    for i, draft in enumerate(drafts):
        draft.order = i
    drafts.sort(key=lambda d: (d.t, d.order))
    return tuple(
        FleetRequest(req_id=i, t_arrival_s=d.t, workload=d.workload,
                     deadline_s=d.deadline_s)
        for i, d in enumerate(drafts))


def _poisson_arrivals(rng: random.Random, rate_hz: float,
                      duration_s: float) -> List[float]:
    times: List[float] = []
    t = rng.expovariate(rate_hz)
    while t < duration_s:
        times.append(t)
        t += rng.expovariate(rate_hz)
    return times


def _diurnal(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    # Thinning: draw a homogeneous process at the peak rate, accept
    # each candidate with probability rate(t)/peak.  One full sinusoid
    # period spans the trace, trough first (night), peak mid-trace.
    peak = spec.mean_rate_hz * (1.0 + _DIURNAL_AMPLITUDE)
    drafts: List[_Draft] = []
    for t in _poisson_arrivals(rng, peak, spec.duration_s):
        phase = 2.0 * math.pi * t / spec.duration_s - math.pi / 2.0
        rate = spec.mean_rate_hz * (
            1.0 + _DIURNAL_AMPLITUDE * math.sin(phase))
        if rng.random() * peak < rate:
            drafts.append(_Draft(
                t=t, workload=rng.choice(spec.workloads),
                deadline_s=rng.uniform(spec.deadline_lo_s,
                                       spec.deadline_hi_s)))
    return drafts


def _bursty(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    background_rate = spec.mean_rate_hz * (1.0 - _BURST_LOAD_FRACTION)
    drafts = [
        _Draft(t=t, workload=rng.choice(spec.workloads),
               deadline_s=rng.uniform(spec.deadline_lo_s,
                                      spec.deadline_hi_s))
        for t in _poisson_arrivals(rng, background_rate, spec.duration_s)]
    burst_load = spec.mean_rate_hz * spec.duration_s * _BURST_LOAD_FRACTION
    n_bursts = max(1, round(burst_load / _BURST_MEAN_SIZE))
    for _ in range(n_bursts):
        epoch = rng.uniform(0.0, spec.duration_s)
        size = 1 + int(rng.expovariate(1.0 / _BURST_MEAN_SIZE))
        hot = rng.choice(spec.workloads)  # one hot workload per burst
        for _ in range(size):
            t = epoch + rng.uniform(0.0, _BURST_WINDOW_S)
            if t < spec.duration_s:
                drafts.append(_Draft(
                    t=t, workload=hot,
                    deadline_s=rng.uniform(spec.deadline_lo_s,
                                           spec.deadline_hi_s)))
    return drafts


def _adversarial(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    trickle_rate = spec.mean_rate_hz * (1.0 - _WAVE_LOAD_FRACTION)
    drafts = [
        _Draft(t=t, workload=rng.choice(spec.workloads),
               deadline_s=rng.uniform(spec.deadline_lo_s,
                                      spec.deadline_hi_s))
        for t in _poisson_arrivals(rng, trickle_rate, spec.duration_s)]
    wave_load = spec.mean_rate_hz * spec.duration_s * _WAVE_LOAD_FRACTION
    per_wave = max(1, round(wave_load / _N_WAVES))
    for wave in range(_N_WAVES):
        t = wave * spec.duration_s / _N_WAVES
        workload = spec.workloads[wave % len(spec.workloads)]
        for _ in range(per_wave):
            # Identical timestamps on purpose: the dispatcher's
            # tie-breaking (request id order) must be deterministic.
            drafts.append(_Draft(t=t, workload=workload,
                                 deadline_s=spec.deadline_lo_s))
    return drafts


_GENERATORS = {
    "diurnal": _diurnal,
    "bursty": _bursty,
    "adversarial": _adversarial,
}


def generate_trace(spec: TraceSpec) -> Tuple[FleetRequest, ...]:
    """Expand ``spec`` into its (deterministic) request sequence."""
    rng = random.Random(spec.seed)
    return _finalize(_GENERATORS[spec.kind](spec, rng))
