"""Seeded open-loop arrival traces: the fleet's stand-in for traffic.

Three generator families, all driven by one ``random.Random(seed)``
(Mersenne Twister - platform-stable), so a :class:`TraceSpec` maps to
exactly one request sequence forever:

* ``diurnal`` - a non-homogeneous Poisson process whose rate follows a
  one-period sinusoid over the trace (the classic day/night curve),
  sampled by thinning;
* ``bursty`` - a background Poisson stream plus seeded burst clusters:
  each burst is a cloud of near-simultaneous requests for *one* hot
  workload (a cache-stampede / hot-content shape);
* ``adversarial`` - synchronized thundering-herd waves: every wave
  lands a block of identical-workload requests at *exactly* the same
  instant with the tightest deadline, plus a thin background trickle.
  Built to stress tie-breaking, hotspot collapse, and deadline
  accounting in the dispatcher.

Requests carry a *relative* deadline (a latency budget from arrival);
the dispatcher turns it absolute.  Request ids are positional in
arrival order, so the trace itself is part of the fleet fingerprint.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import HarnessError
from repro.workloads.registry import workload_by_abbrev

#: The arrival-trace families :func:`generate_trace` implements.
TRACE_KINDS: Tuple[str, ...] = ("diurnal", "bursty", "adversarial")

#: Requests per columnar block yielded by :func:`iter_trace_chunks`.
DEFAULT_CHUNK_SIZE = 65536

#: Default request mix: tablet-supported workloads with strongly
#: asymmetric per-platform energy (MB and MM are far cheaper on the
#: tablet, BS far cheaper on the desktop), so placement quality is
#: visible in the fleet totals.
DEFAULT_TRACE_WORKLOADS: Tuple[str, ...] = ("MB", "MM", "RT", "BS")

#: Diurnal swing: rate(t) = mean * (1 + AMP * sin(...)), so the peak
#: runs at (1+AMP)x the mean and the trough at (1-AMP)x.
_DIURNAL_AMPLITUDE = 0.8
#: Bursty split: this fraction of the load arrives in bursts, the rest
#: as background Poisson.
_BURST_LOAD_FRACTION = 0.6
#: Mean requests per burst (geometric-ish, via an exponential draw).
_BURST_MEAN_SIZE = 12.0
#: Seconds a burst's requests are smeared over.
_BURST_WINDOW_S = 0.5
#: Adversarial split: fraction of the load arriving in synchronized
#: waves (the rest is the background trickle).
_WAVE_LOAD_FRACTION = 0.8
_N_WAVES = 8


@dataclass(frozen=True)
class FleetRequest:
    """One kernel request in the arrival stream."""

    #: Positional id in arrival order (ties broken by generation
    #: order), so the id sequence is itself deterministic.
    req_id: int
    #: Arrival time on the fleet clock, seconds.
    t_arrival_s: float
    #: Table-1 workload abbreviation.
    workload: str
    #: Relative latency budget: the request misses its deadline when
    #: completion exceeds ``t_arrival_s + deadline_s``.
    deadline_s: float
    #: How long the dispatcher may *hold* the request past arrival
    #: (carbon-aware temporal shifting); 0 means dispatch on arrival.
    #: Always derived as ``deferral_fraction * deadline_s`` - never a
    #: fresh RNG draw - so enabling deferral does not perturb the
    #: trace's arrival/deadline stream.
    deferrable_s: float = 0.0

    def canonical(self) -> str:
        base = (f"{self.req_id}|{self.t_arrival_s!r}|{self.workload}"
                f"|{self.deadline_s!r}")
        # Appended only when nonzero so pre-deferral canonicals (and
        # the fingerprints built on them) are unchanged.
        if self.deferrable_s:
            base += f"|defer={self.deferrable_s!r}"
        return base


@dataclass(frozen=True)
class TraceSpec:
    """Frozen description of one arrival trace (seed included).

    Hashable and canonically serializable: the trace participates in
    the :meth:`~repro.fleet.dispatcher.FleetResult.fingerprint`
    through :meth:`canonical`, never through the expanded request
    list.
    """

    kind: str = "bursty"
    duration_s: float = 60.0
    #: Long-run average arrival rate, requests/second (each family
    #: redistributes the same total load in its own shape).
    mean_rate_hz: float = 4.0
    workloads: Tuple[str, ...] = DEFAULT_TRACE_WORKLOADS
    seed: int = 2016
    #: Relative-deadline budget range, drawn uniformly per request
    #: (adversarial waves always use the tight end).
    deadline_lo_s: float = 30.0
    deadline_hi_s: float = 120.0
    #: Fraction of each request's deadline the dispatcher may spend
    #: *holding* it for a lower-carbon window (0 disables deferral).
    #: Derived per request as ``deferral_fraction * deadline_s``, so
    #: the RNG draw sequence - and therefore every existing trace -
    #: is untouched.
    deferral_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if self.kind not in TRACE_KINDS:
            raise HarnessError(f"unknown trace kind {self.kind!r}; "
                               f"expected one of {TRACE_KINDS}")
        if self.duration_s <= 0.0:
            raise HarnessError("trace duration_s must be positive")
        if self.mean_rate_hz <= 0.0:
            raise HarnessError("trace mean_rate_hz must be positive")
        if not self.workloads:
            raise HarnessError("trace needs at least one workload")
        for abbrev in self.workloads:
            workload_by_abbrev(abbrev)  # fail fast with did-you-mean
        if not 0.0 < self.deadline_lo_s <= self.deadline_hi_s:
            raise HarnessError("need 0 < deadline_lo_s <= deadline_hi_s")
        if not (math.isfinite(self.deferral_fraction)
                and 0.0 <= self.deferral_fraction <= 1.0):
            raise HarnessError("deferral_fraction must be in [0, 1]")

    def canonical(self) -> str:
        base = (f"{self.kind}|{self.duration_s!r}|{self.mean_rate_hz!r}"
                f"|{','.join(self.workloads)}|{self.seed}"
                f"|{self.deadline_lo_s!r}|{self.deadline_hi_s!r}")
        # Appended only when deferral is on: zero-deferral specs keep
        # their pre-existing canonical form (golden fingerprints).
        if self.deferral_fraction > 0.0:
            base += f"|defer={self.deferral_fraction!r}"
        return base

    def requests(self) -> Tuple[FleetRequest, ...]:
        return generate_trace(self)

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
               ) -> Iterator["TraceChunk"]:
        return iter_trace_chunks(self, chunk_size)


@dataclass
class _Draft:
    """A request before ids are assigned (generation order retained)."""

    t: float
    workload: str
    deadline_s: float
    order: int = field(default=0)


def _finalize(drafts: List[_Draft],
              deferral_fraction: float = 0.0) -> Tuple[FleetRequest, ...]:
    for i, draft in enumerate(drafts):
        draft.order = i
    drafts.sort(key=lambda d: (d.t, d.order))
    return tuple(
        FleetRequest(req_id=i, t_arrival_s=d.t, workload=d.workload,
                     deadline_s=d.deadline_s,
                     deferrable_s=deferral_fraction * d.deadline_s)
        for i, d in enumerate(drafts))


def _poisson_arrivals(rng: random.Random, rate_hz: float,
                      duration_s: float) -> List[float]:
    times: List[float] = []
    t = rng.expovariate(rate_hz)
    while t < duration_s:
        times.append(t)
        t += rng.expovariate(rate_hz)
    return times


def _diurnal(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    # Thinning: draw a homogeneous process at the peak rate, accept
    # each candidate with probability rate(t)/peak.  One full sinusoid
    # period spans the trace, trough first (night), peak mid-trace.
    peak = spec.mean_rate_hz * (1.0 + _DIURNAL_AMPLITUDE)
    drafts: List[_Draft] = []
    for t in _poisson_arrivals(rng, peak, spec.duration_s):
        phase = 2.0 * math.pi * t / spec.duration_s - math.pi / 2.0
        rate = spec.mean_rate_hz * (
            1.0 + _DIURNAL_AMPLITUDE * math.sin(phase))
        if rng.random() * peak < rate:
            drafts.append(_Draft(
                t=t, workload=rng.choice(spec.workloads),
                deadline_s=rng.uniform(spec.deadline_lo_s,
                                       spec.deadline_hi_s)))
    return drafts


def _bursty(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    background_rate = spec.mean_rate_hz * (1.0 - _BURST_LOAD_FRACTION)
    drafts = [
        _Draft(t=t, workload=rng.choice(spec.workloads),
               deadline_s=rng.uniform(spec.deadline_lo_s,
                                      spec.deadline_hi_s))
        for t in _poisson_arrivals(rng, background_rate, spec.duration_s)]
    burst_load = spec.mean_rate_hz * spec.duration_s * _BURST_LOAD_FRACTION
    n_bursts = max(1, round(burst_load / _BURST_MEAN_SIZE))
    for _ in range(n_bursts):
        epoch = rng.uniform(0.0, spec.duration_s)
        size = 1 + int(rng.expovariate(1.0 / _BURST_MEAN_SIZE))
        hot = rng.choice(spec.workloads)  # one hot workload per burst
        for _ in range(size):
            t = epoch + rng.uniform(0.0, _BURST_WINDOW_S)
            if t < spec.duration_s:
                drafts.append(_Draft(
                    t=t, workload=hot,
                    deadline_s=rng.uniform(spec.deadline_lo_s,
                                           spec.deadline_hi_s)))
    return drafts


def _adversarial(spec: TraceSpec, rng: random.Random) -> List[_Draft]:
    trickle_rate = spec.mean_rate_hz * (1.0 - _WAVE_LOAD_FRACTION)
    drafts = [
        _Draft(t=t, workload=rng.choice(spec.workloads),
               deadline_s=rng.uniform(spec.deadline_lo_s,
                                      spec.deadline_hi_s))
        for t in _poisson_arrivals(rng, trickle_rate, spec.duration_s)]
    wave_load = spec.mean_rate_hz * spec.duration_s * _WAVE_LOAD_FRACTION
    per_wave = max(1, round(wave_load / _N_WAVES))
    for wave in range(_N_WAVES):
        t = wave * spec.duration_s / _N_WAVES
        workload = spec.workloads[wave % len(spec.workloads)]
        for _ in range(per_wave):
            # Identical timestamps on purpose: the dispatcher's
            # tie-breaking (request id order) must be deterministic.
            drafts.append(_Draft(t=t, workload=workload,
                                 deadline_s=spec.deadline_lo_s))
    return drafts


_GENERATORS = {
    "diurnal": _diurnal,
    "bursty": _bursty,
    "adversarial": _adversarial,
}


def generate_trace(spec: TraceSpec) -> Tuple[FleetRequest, ...]:
    """Expand ``spec`` into its (deterministic) request sequence."""
    rng = random.Random(spec.seed)
    return _finalize(_GENERATORS[spec.kind](spec, rng),
                     spec.deferral_fraction)


# --------------------------------------------------------------------
# Chunked columnar form
#
# The scalar generators above are the *reference*: one FleetRequest
# object per request, ~200+ bytes each, hopeless at millions of
# requests.  The columnar twins below replay the exact same RNG draw
# sequence (same methods, same order, same Mersenne Twister state at
# every step) but write raw scalars into flat buffers - ~18 bytes per
# request - and finalize with one stable numpy argsort instead of a
# list sort.  Element-for-element equality with the scalar generators
# under the same seed is a locked contract (tests/fleet/test_trace.py
# and the hypothesis suite differential-test it).


@dataclass(frozen=True)
class TraceChunk:
    """A bounded columnar block of consecutive requests.

    Request ids are positional: row ``i`` of the chunk is request
    ``start_id + i``.  ``workload_idx`` indexes into ``workloads``
    (the spec's tuple, in spec order).  Arrays are read-only views
    over the trace's column store - do not mutate.
    """

    start_id: int
    workloads: Tuple[str, ...]
    t_arrival_s: np.ndarray     # float64, nondecreasing
    workload_idx: np.ndarray    # uint16 index into ``workloads``
    deadline_s: np.ndarray      # float64 relative latency budget
    #: The spec's deferral fraction; deferrable_s stays derived
    #: (``fraction * deadline``) so no column is needed for it.
    deferral_fraction: float = 0.0

    def __len__(self) -> int:
        return len(self.t_arrival_s)

    def requests(self) -> Iterator[FleetRequest]:
        """Expand to scalar requests (testing/debug convenience)."""
        for i in range(len(self.t_arrival_s)):
            deadline = float(self.deadline_s[i])
            yield FleetRequest(
                req_id=self.start_id + i,
                t_arrival_s=float(self.t_arrival_s[i]),
                workload=self.workloads[int(self.workload_idx[i])],
                deadline_s=deadline,
                deferrable_s=self.deferral_fraction * deadline)


class _ColumnSink:
    """The ``_Draft`` list's flat twin: raw scalars, no objects.

    ``array`` gives C-speed amortized append at 8/2/8 bytes per row;
    numpy views the buffers zero-copy at finalize time.
    """

    def __init__(self, workloads: Tuple[str, ...]) -> None:
        self.index = {w: i for i, w in enumerate(workloads)}
        self.t = array("d")
        self.w = array("H")
        self.d = array("d")

    def append(self, t: float, workload: str, deadline_s: float) -> None:
        self.t.append(t)
        self.w.append(self.index[workload])
        self.d.append(deadline_s)


def _poisson_arrival_column(rng: random.Random, rate_hz: float,
                            duration_s: float) -> array:
    """:func:`_poisson_arrivals` with an ``array`` accumulator.

    Identical expovariate draw sequence; only the container differs.
    """
    times = array("d")
    times_append = times.append
    expovariate = rng.expovariate
    t = expovariate(rate_hz)
    while t < duration_s:
        times_append(t)
        t += expovariate(rate_hz)
    return times


# The column generators bind methods (append/choice/uniform) to locals
# because they sit on the streaming pipeline's critical path - at a
# million rows the per-row attribute lookups alone are measurable.
# Every arithmetic *expression* is kept textually identical to the
# scalar twin: re-associating even one product changes float rounding,
# which changes an accept/reject draw, which desynchronizes the RNG
# stream and breaks the element-for-element contract.

def _diurnal_columns(spec: TraceSpec, rng: random.Random,
                     sink: _ColumnSink) -> None:
    # Same draw order as _diurnal: every expovariate first (the whole
    # homogeneous candidate process), then accept/choice/uniform per
    # candidate.
    peak = spec.mean_rate_hz * (1.0 + _DIURNAL_AMPLITUDE)
    t_app, w_app, d_app = sink.t.append, sink.w.append, sink.d.append
    index = sink.index
    rng_random, choice, uniform = rng.random, rng.choice, rng.uniform
    sin = math.sin
    workloads = spec.workloads
    lo, hi = spec.deadline_lo_s, spec.deadline_hi_s
    for t in _poisson_arrival_column(rng, peak, spec.duration_s):
        phase = 2.0 * math.pi * t / spec.duration_s - math.pi / 2.0
        rate = spec.mean_rate_hz * (
            1.0 + _DIURNAL_AMPLITUDE * sin(phase))
        if rng_random() * peak < rate:
            t_app(t)
            w_app(index[choice(workloads)])
            d_app(uniform(lo, hi))


def _bursty_columns(spec: TraceSpec, rng: random.Random,
                    sink: _ColumnSink) -> None:
    background_rate = spec.mean_rate_hz * (1.0 - _BURST_LOAD_FRACTION)
    t_app, w_app, d_app = sink.t.append, sink.w.append, sink.d.append
    index = sink.index
    choice, uniform = rng.choice, rng.uniform
    workloads = spec.workloads
    lo, hi = spec.deadline_lo_s, spec.deadline_hi_s
    for t in _poisson_arrival_column(rng, background_rate,
                                     spec.duration_s):
        t_app(t)
        w_app(index[choice(workloads)])
        d_app(uniform(lo, hi))
    burst_load = spec.mean_rate_hz * spec.duration_s * _BURST_LOAD_FRACTION
    n_bursts = max(1, round(burst_load / _BURST_MEAN_SIZE))
    for _ in range(n_bursts):
        epoch = uniform(0.0, spec.duration_s)
        size = 1 + int(rng.expovariate(1.0 / _BURST_MEAN_SIZE))
        hot = index[choice(workloads)]
        for _ in range(size):
            t = epoch + uniform(0.0, _BURST_WINDOW_S)
            # The deadline draw happens only for in-range items in the
            # scalar generator; skipping it here too keeps the RNG
            # streams aligned.
            if t < spec.duration_s:
                t_app(t)
                w_app(hot)
                d_app(uniform(lo, hi))


def _adversarial_columns(spec: TraceSpec, rng: random.Random,
                         sink: _ColumnSink) -> None:
    trickle_rate = spec.mean_rate_hz * (1.0 - _WAVE_LOAD_FRACTION)
    t_app, w_app, d_app = sink.t.append, sink.w.append, sink.d.append
    index = sink.index
    choice, uniform = rng.choice, rng.uniform
    workloads = spec.workloads
    lo, hi = spec.deadline_lo_s, spec.deadline_hi_s
    for t in _poisson_arrival_column(rng, trickle_rate, spec.duration_s):
        t_app(t)
        w_app(index[choice(workloads)])
        d_app(uniform(lo, hi))
    wave_load = spec.mean_rate_hz * spec.duration_s * _WAVE_LOAD_FRACTION
    per_wave = max(1, round(wave_load / _N_WAVES))
    for wave in range(_N_WAVES):
        t = wave * spec.duration_s / _N_WAVES
        hot = index[workloads[wave % len(workloads)]]
        for _ in range(per_wave):
            t_app(t)
            w_app(hot)
            d_app(lo)


_COLUMN_GENERATORS = {
    "diurnal": _diurnal_columns,
    "bursty": _bursty_columns,
    "adversarial": _adversarial_columns,
}


def trace_columns(spec: TraceSpec
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``spec`` into arrival-ordered columns.

    Returns ``(t_arrival_s, workload_idx, deadline_s)`` with row ``i``
    describing request id ``i`` - the columnar image of
    :func:`generate_trace`.  The stable argsort on arrival time breaks
    ties by generation order, exactly like the scalar ``(t, order)``
    sort, so the two forms agree element-for-element.
    """
    rng = random.Random(spec.seed)
    sink = _ColumnSink(spec.workloads)
    _COLUMN_GENERATORS[spec.kind](spec, rng, sink)
    t = np.asarray(sink.t, dtype=np.float64)
    w = np.asarray(sink.w, dtype=np.uint16)
    d = np.asarray(sink.d, dtype=np.float64)
    order = np.argsort(t, kind="stable")
    return t[order], w[order], d[order]


def iter_trace_chunks(spec: TraceSpec,
                      chunk_size: int = DEFAULT_CHUNK_SIZE
                      ) -> Iterator[TraceChunk]:
    """Yield the trace as bounded read-only columnar chunks.

    The column store itself is materialized once (the global
    arrival-order sort needs it; ~18 bytes/request, against ~200+ for
    the object form), then sliced into zero-copy views of at most
    ``chunk_size`` rows so downstream per-chunk state stays bounded.
    """
    if chunk_size <= 0:
        raise HarnessError("chunk_size must be positive")
    t, w, d = trace_columns(spec)
    for col in (t, w, d):
        col.setflags(write=False)
    for start in range(0, len(t), chunk_size):
        stop = min(start + chunk_size, len(t))
        yield TraceChunk(start_id=start, workloads=spec.workloads,
                         t_arrival_s=t[start:stop],
                         workload_idx=w[start:stop],
                         deadline_s=d[start:stop],
                         deferral_fraction=spec.deferral_fraction)
