"""The global dispatcher: an event-driven loop over the arrival trace.

Two phases, both deterministic:

1. **Cell resolution.**  Every (platform class, workload) pair the
   trace could touch becomes one ``fleet-cell``
   :class:`~repro.harness.engine.RunSpec`, submitted as a single
   engine batch - parallel under ``--jobs N``, deduped by the
   content-addressed cache, byte-identical serial vs pooled (the
   engine's own guarantee).  A thousand-node fleet costs as many
   simulations as it has distinct cells.

2. **Dispatch.**  Requests replay in arrival order; a pending-completion
   heap (keyed ``(t_complete, dispatch seq)``) retires finished work
   before each arrival, so placement policies observe exactly the
   completions a real-time dispatcher would have seen.  Placement
   reads only the :class:`~repro.fleet.policies.FleetView`; the
   simulated execution itself is the phase-1 profile (per-node EAS
   stays black-box).

Determinism contract (docs/FLEET.md): same
(:class:`~repro.fleet.topology.FleetSpec`,
:class:`~repro.fleet.trace.TraceSpec`, policy) in, byte-identical
:meth:`FleetResult.fingerprint` out - on reruns, across ``--jobs N``,
and across processes.  Every tie anywhere (equal arrival times, equal
backlogs, equal completion instants) breaks on an explicit integer
(request id, node index, dispatch sequence), never on iteration
order of a hash container.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import HarnessError
from repro.fleet.cells import FleetCellProfile
from repro.fleet.policies import (
    PLACEMENT_POLICIES,
    RANDOM_POLICY_SALT,
    FleetView,
    make_policy,
)
from repro.fleet.sketch import LatencySketch
from repro.fleet.topology import FleetSpec
from repro.fleet.trace import (
    DEFAULT_CHUNK_SIZE,
    FleetRequest,
    TraceSpec,
    trace_columns,
)
from repro.harness.engine import (
    KIND_FLEET_CELL,
    ExecutionEngine,
    RunSpec,
    SchedulerSpec,
    get_default_engine,
)
from repro.harness.report import format_table, heading
from repro.obs.observer import Observer
from repro.obs.records import DecisionRecord
from repro.soc.carbon import CarbonTrace

#: ``exit_path`` tag on fleet placement decision records (the node-
#: level records keep the scheduler's own Fig.-7 exit paths).
EXIT_FLEET_PLACEMENT = "fleet-placement"

#: The two dispatch implementations :func:`run_fleet` selects between.
#: ``reference`` is the original per-request loop (one RequestOutcome
#: object per request); ``streaming`` is the chunked columnar pipeline
#: (bounded memory, identical placement decisions - see
#: docs/FLEET.md, "Streaming dispatch").
DISPATCH_MODES: Tuple[str, ...] = ("reference", "streaming")

#: Streaming mode keeps one DecisionRecord per this many requests...
DEFAULT_SAMPLE_STRIDE = 1000
#: ...plus every anomalous (deadline-missing) request, capped here so
#: record memory stays bounded on pathological traces.  Exact match
#: counters are kept alongside (nothing is lost silently).
MAX_SAMPLED_RECORDS = 10_000

#: Fixed platform-class order used by the streaming lookup tables
#: (index 0 = desktop, 1 = tablet, same order everywhere).
_PLATFORM_ORDER: Tuple[str, ...] = ("desktop", "tablet")


@dataclass(frozen=True)
class RequestOutcome:
    """One routed request, end to end, on the fleet clock."""

    req_id: int
    workload: str
    #: Stable node id (``<kind>-<index>``), also on the decision record.
    node: str
    node_index: int
    platform_kind: str
    t_arrival_s: float
    t_start_s: float
    t_complete_s: float
    #: Relative latency budget the request arrived with.
    deadline_s: float
    #: Software-visible energy of the node-level run, joules.
    energy_j: float
    #: Grams of CO2 this request's energy cost, weighted by the grid
    #: intensity at ``t_start_s`` in the serving node's region; None
    #: on carbon-blind fleets.
    carbon_g: Optional[float] = None

    @property
    def latency_s(self) -> float:
        return self.t_complete_s - self.t_arrival_s

    @property
    def missed_deadline(self) -> bool:
        return self.latency_s > self.deadline_s

    def canonical(self) -> str:
        base = (f"{self.req_id}|{self.workload}|{self.node}"
                f"|{self.t_arrival_s!r}|{self.t_start_s!r}"
                f"|{self.t_complete_s!r}|{self.deadline_s!r}"
                f"|{self.energy_j!r}")
        # Appended only on carbon-aware fleets so carbon-blind
        # fingerprints keep their pre-existing byte form.
        if self.carbon_g is not None:
            base += f"|co2={self.carbon_g!r}"
        return base


@dataclass
class FleetResult:
    """One policy's routing of one trace over one fleet."""

    fleet: FleetSpec
    trace: TraceSpec
    policy: str
    outcomes: Tuple[RequestOutcome, ...]
    #: Distinct cell profiles the dispatch drew on, sorted by
    #: (platform_kind, workload).
    cells: Tuple[FleetCellProfile, ...]
    #: Per-request placement audit records (node-id tagged); excluded
    #: from the fingerprint, same contract as chaos decision records.
    placement_records: Tuple[DecisionRecord, ...] = ()
    #: Engine executions vs cache recalls for the cell batch.
    cells_executed: int = 0

    # -- accounting --------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.outcomes)

    @property
    def total_energy_j(self) -> float:
        """Busy (active-execution) energy across the fleet, joules -
        the quantity placement actually moves."""
        return sum(o.energy_j for o in self.outcomes)

    @property
    def makespan_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return max(o.t_complete_s for o in self.outcomes)

    @property
    def idle_energy_estimate_j(self) -> float:
        """Fleet idle-floor energy over the makespan: every node burns
        its spec idle power whenever not executing.  Reported apart
        from :attr:`total_energy_j` because for a fixed fleet and
        horizon it is (near-)policy-invariant - folding it into the
        headline number would only dilute the placement signal."""
        horizon = self.makespan_s
        busy_by_node: Dict[int, float] = {}
        for outcome in self.outcomes:
            busy_by_node[outcome.node_index] = (
                busy_by_node.get(outcome.node_index, 0.0)
                + (outcome.t_complete_s - outcome.t_start_s))
        idle_power = {
            kind: self.fleet.platform_spec(kind).idle_power_w
            for kind in ("desktop", "tablet")}
        total = 0.0
        for node in self.fleet.nodes():
            busy = busy_by_node.get(node.index, 0.0)
            total += idle_power[node.platform_kind] * max(
                0.0, horizon - busy)
        return total

    @property
    def total_carbon_g(self) -> float:
        """Carbon mass across the fleet, grams (0 on carbon-blind
        fleets, where no outcome carries a carbon figure)."""
        return sum(o.carbon_g for o in self.outcomes
                   if o.carbon_g is not None)

    def low_carbon_energy_fraction(self) -> float:
        """Of the *deferrable* requests' energy, the fraction spent in
        below-median-intensity windows (median of each serving
        region's signal over the trace horizon).

        The acceptance number for carbon-aware shifting: a
        carbon-blind dispatch of a diurnal trace lands roughly half
        the deferrable energy below the median; temporal shifting
        should push that fraction well above it.  Raises on
        carbon-blind fleets (there is no signal to measure against).
        """
        if self.fleet.carbon is None:
            raise HarnessError(
                "low_carbon_energy_fraction needs a carbon-aware fleet")
        signal = self.fleet.carbon.trace()
        horizon = max(self.trace.duration_s, self.makespan_s)
        medians = [signal.median_intensity(horizon, region)
                   for region in range(self.fleet.carbon.n_regions)]
        deferrable = total = 0.0
        for o in self.outcomes:
            if self.trace.deferral_fraction * o.deadline_s <= 0.0:
                continue
            total += o.energy_j
            if (signal.intensity(o.t_start_s, o.node_index)
                    < medians[o.node_index % self.fleet.carbon.n_regions]):
                deferrable += o.energy_j
        return deferrable / total if total else 0.0

    @property
    def deadline_misses(self) -> int:
        return sum(1 for o in self.outcomes if o.missed_deadline)

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.n_requests if self.outcomes else 0.0

    @property
    def mean_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_s for o in self.outcomes) / len(self.outcomes)

    def latency_percentile_s(self, pct: float) -> float:
        """Nearest-rank percentile of request latency."""
        if not self.outcomes:
            return 0.0
        ordered = sorted(o.latency_s for o in self.outcomes)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def dispatches_by_kind(self) -> Dict[str, int]:
        counts = {"desktop": 0, "tablet": 0}
        for outcome in self.outcomes:
            counts[outcome.platform_kind] += 1
        return counts

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over specs, policy, cells, and every outcome."""
        lines = [
            f"fleet|{self.fleet.canonical()}",
            f"trace|{self.trace.canonical()}",
            f"policy|{self.policy}",
        ]
        lines.extend(f"cell|{c.canonical()}" for c in self.cells)
        lines.extend(o.canonical() for o in self.outcomes)
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def stream_fingerprint(self) -> str:
        """The streaming-mode digest computed from these outcomes.

        Byte-equality with :meth:`FleetStreamResult.fingerprint` is
        the cross-mode differential lock: it covers every placement
        decision and every timestamp of every request, chunk-size
        independently.
        """
        n = len(self.outcomes)
        index = {w: i for i, w in enumerate(self.trace.workloads)}
        digests = _ColumnDigests()
        if n:
            digests.update(
                workload_idx=np.fromiter(
                    (index[o.workload] for o in self.outcomes),
                    np.uint16, n),
                t_arrival_s=np.fromiter(
                    (o.t_arrival_s for o in self.outcomes), np.float64, n),
                deadline_s=np.fromiter(
                    (o.deadline_s for o in self.outcomes), np.float64, n),
                node_index=np.fromiter(
                    (o.node_index for o in self.outcomes), np.int32, n),
                t_start_s=np.fromiter(
                    (o.t_start_s for o in self.outcomes), np.float64, n),
                t_complete_s=np.fromiter(
                    (o.t_complete_s for o in self.outcomes), np.float64, n))
        return _fold_stream_digest(self.fleet, self.trace, self.policy,
                                   self.cells, digests, n)

    def render(self) -> str:
        kinds = self.dispatches_by_kind()
        rows = [
            ("requests", f"{self.n_requests}"),
            ("nodes", f"{self.fleet.n_nodes} "
                      f"({self.fleet.desktop_fraction:.0%} desktop)"),
            ("distinct cells", f"{len(self.cells)} "
                               f"({self.cells_executed} executed, rest "
                               f"cached/deduped)"),
            ("dispatches", f"desktop={kinds['desktop']} "
                           f"tablet={kinds['tablet']}"),
            ("fleet energy (busy)", f"{self.total_energy_j:.1f} J"),
            ("idle-floor estimate", f"{self.idle_energy_estimate_j:.1f} J "
                                    f"over {self.makespan_s:.1f} s"),
            ("mean latency", f"{self.mean_latency_s:.2f} s"),
            ("p95 latency", f"{self.latency_percentile_s(95):.2f} s"),
            ("deadline misses", f"{self.deadline_misses} "
                                f"({self.miss_rate:.1%})"),
        ]
        if self.fleet.carbon is not None:
            rows.append(("fleet carbon", f"{self.total_carbon_g:.2f} g "
                                         f"CO2"))
            if self.trace.deferral_fraction > 0.0:
                rows.append((
                    "low-carbon energy",
                    f"{self.low_carbon_energy_fraction():.1%} of "
                    f"deferrable energy below median intensity"))
        return "\n".join([
            heading(f"Fleet dispatch: policy={self.policy}, "
                    f"trace={self.trace.kind}"),
            format_table(["quantity", "value"], rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


@dataclass
class FleetComparisonResult:
    """Several policies routing the *same* trace over the same fleet."""

    fleet: FleetSpec
    trace: TraceSpec
    results: Tuple[FleetResult, ...]

    def result(self, policy: str) -> FleetResult:
        for result in self.results:
            if result.policy == policy:
                return result
        raise HarnessError(f"no result for policy {policy!r}")

    def fingerprint(self) -> str:
        lines = [f"{r.policy}|{r.fingerprint()}" for r in self.results]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def render(self) -> str:
        rows = []
        for r in self.results:
            kinds = r.dispatches_by_kind()
            rows.append((
                r.policy, r.n_requests, f"{r.total_energy_j:.1f}",
                f"{r.mean_latency_s:.2f}",
                f"{r.latency_percentile_s(95):.2f}",
                f"{r.deadline_misses} ({r.miss_rate:.1%})",
                f"{kinds['desktop']}/{kinds['tablet']}",
            ))
        n_requests = self.results[0].n_requests if self.results else 0
        return "\n".join([
            heading(f"Fleet policy comparison: {self.fleet.n_nodes} nodes, "
                    f"{self.trace.kind} trace, "
                    f"{n_requests} requests"),
            format_table(
                ["policy", "reqs", "energy (J)", "mean lat (s)",
                 "p95 lat (s)", "misses", "desktop/tablet"], rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


# -- the dispatch loop -----------------------------------------------------------

#: Candidate hold instants evaluated per deferrable request: evenly
#: spaced over ``[arrival, arrival + deferrable_s]``, ties earliest.
_DEFERRAL_SAMPLES = 17


def _deferral_start(request: FleetRequest, carbon: CarbonTrace) -> float:
    """The earliest lowest-intensity dispatch instant in the hold window.

    The deferral decision happens *before* placement (no node, hence
    no region, is known yet), so it reads the grid-operator signal -
    region 0.  Per-region accounting still prices the energy at the
    serving node's own region once placed.
    """
    if request.deferrable_s <= 0.0:
        return request.t_arrival_s
    best_t = request.t_arrival_s
    best_value = carbon.intensity(best_t, 0)
    for k in range(1, _DEFERRAL_SAMPLES):
        t = (request.t_arrival_s
             + request.deferrable_s * k / (_DEFERRAL_SAMPLES - 1))
        value = carbon.intensity(t, 0)
        if value < best_value:
            best_value = value
            best_t = t
    return best_t


def _run_cell_batch(fleet: FleetSpec, pairs: Sequence[Tuple[str, str]],
                    engine: ExecutionEngine, observer: Optional[Observer]
                    ) -> Tuple[Dict[Tuple[str, str], FleetCellProfile], int]:
    """One engine batch over sorted (class, workload) cell pairs."""
    specs = [
        RunSpec(platform=fleet.platform_spec(kind), workload=workload,
                scheduler=SchedulerSpec.eas(metric=fleet.metric),
                kind=KIND_FLEET_CELL, tablet=(kind == "tablet"),
                seed=fleet.seed)
        for kind, workload in pairs]
    results = engine.run_batch(specs, observer=observer)
    executed = sum(1 for r in results if not r.from_cache)
    return ({pair: result.payload for pair, result in zip(pairs, results)},
            executed)


def _resolve_cells(fleet: FleetSpec, requests: Sequence[FleetRequest],
                   view: FleetView, engine: ExecutionEngine,
                   observer: Optional[Observer]
                   ) -> Tuple[Dict[Tuple[str, str], FleetCellProfile], int]:
    """One engine batch covering every reachable (class, workload) cell."""
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for request in requests:
        kinds = view.eligible_kinds(request.workload)
        if not kinds:
            raise HarnessError(
                f"request {request.req_id}: no node in this fleet can run "
                f"workload {request.workload!r}")
        for kind in kinds:
            if (kind, request.workload) not in seen:
                seen.add((kind, request.workload))
                pairs.append((kind, request.workload))
    pairs.sort()
    return _run_cell_batch(fleet, pairs, engine, observer)


def run_fleet(fleet: FleetSpec, trace: TraceSpec,
              policy: str = "energy_aware",
              engine: Optional[ExecutionEngine] = None,
              observer: Optional[Observer] = None,
              dispatch_mode: str = "reference",
              chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Route ``trace`` over ``fleet`` under one placement policy.

    ``dispatch_mode`` selects the implementation: ``reference`` (the
    original per-request loop, returns :class:`FleetResult`) or
    ``streaming`` (the chunked columnar pipeline, returns
    :class:`FleetStreamResult`).  Both make byte-identical placement
    decisions; see :meth:`FleetResult.stream_fingerprint`.
    """
    if dispatch_mode not in DISPATCH_MODES:
        raise HarnessError(
            f"unknown dispatch_mode {dispatch_mode!r}; expected one of "
            f"{DISPATCH_MODES}")
    if dispatch_mode == "streaming":
        return dispatch_stream(fleet, trace, policy=policy, engine=engine,
                               observer=observer, chunk_size=chunk_size)
    if engine is None:
        engine = get_default_engine()
    obs = observer if observer is not None and observer.enabled else None
    requests = trace.requests()
    view = FleetView(fleet.nodes())
    placer = make_policy(policy, seed=fleet.seed)

    if obs is not None:
        span = obs.span("fleet.run", policy=policy, nodes=fleet.n_nodes,
                        trace=trace.kind, requests=len(requests))
        span.__enter__()
    profiles, executed = _resolve_cells(fleet, requests, view, engine, obs)

    outcomes: List[RequestOutcome] = []
    records: List[DecisionRecord] = []
    # Pending completions: (t_complete, dispatch seq, outcome index).
    pending: List[Tuple[float, int, int]] = []
    seq = 0

    def retire(until: float) -> None:
        while pending and pending[0][0] <= until:
            _, _, outcome_index = heapq.heappop(pending)
            outcome = outcomes[outcome_index]
            view.note_completion(
                outcome.node_index, outcome.workload,
                outcome.t_complete_s - outcome.t_start_s, outcome.energy_j)
            if obs is not None:
                obs.inc("fleet.completions")
                if outcome.missed_deadline:
                    obs.inc("fleet.deadline_misses")
                obs.observe("fleet.latency_s", outcome.latency_s)

    # Carbon-aware temporal shifting: a deferrable request may be held
    # up to its deferrable_s for a lower-intensity window, after which
    # it re-enters the dispatch order at its *effective* time (ties on
    # req_id - explicit-integer tie-breaking, like everything here).
    # With no carbon signal the schedule is the arrival order verbatim.
    carbon = fleet.carbon.trace() if fleet.carbon is not None else None
    if carbon is not None:
        schedule = [(_deferral_start(request, carbon), request)
                    for request in requests]
        schedule.sort(key=lambda pair: (pair[0], pair[1].req_id))
    else:
        schedule = [(request.t_arrival_s, request) for request in requests]

    for t_dispatch, request in schedule:
        view.now = t_dispatch
        retire(t_dispatch)
        node_index, reason = placer.place(view, request)
        if not view.is_eligible(node_index, request.workload):
            raise HarnessError(
                f"policy {policy!r} placed {request.workload!r} on "
                f"ineligible node {view.nodes[node_index].name}")
        node = view.nodes[node_index]
        profile = profiles[(node.platform_kind, request.workload)]
        t_start = max(t_dispatch, view.free_at[node_index])
        t_complete = t_start + profile.time_s
        outcomes.append(RequestOutcome(
            req_id=request.req_id,
            workload=request.workload,
            node=node.name,
            node_index=node_index,
            platform_kind=node.platform_kind,
            t_arrival_s=request.t_arrival_s,
            t_start_s=t_start,
            t_complete_s=t_complete,
            deadline_s=request.deadline_s,
            energy_j=profile.energy_j,
            carbon_g=(carbon.grams(profile.energy_j, t_start, node_index)
                      if carbon is not None else None)))
        view.note_dispatch(node_index, request.workload, t_complete)
        heapq.heappush(pending, (t_complete, seq, len(outcomes) - 1))
        seq += 1
        notes = [f"policy:{policy}", f"node:{node.name}",
                 f"reason:{reason}",
                 f"deadline_s:{request.deadline_s:.1f}"]
        if t_dispatch > request.t_arrival_s:
            notes.append(
                f"deferred:{t_dispatch - request.t_arrival_s:.1f}s")
        records.append(DecisionRecord(
            exit_path=EXIT_FLEET_PLACEMENT,
            kernel=request.workload,
            alpha=profile.final_alpha or 0.0,
            tenant=node.name,
            sim_time_s=t_dispatch,
            notes=notes))
        if obs is not None:
            obs.inc("fleet.dispatches")
            obs.inc(f"fleet.dispatches.{node.platform_kind}")

    retire(float("inf"))

    cells = tuple(profiles[pair] for pair in sorted(profiles))
    result = FleetResult(
        fleet=fleet, trace=trace, policy=policy,
        outcomes=tuple(outcomes), cells=cells,
        placement_records=tuple(records), cells_executed=executed)
    if obs is not None:
        for record in records:
            obs.decision(record)
        obs.set_gauge("fleet.nodes", fleet.n_nodes)
        obs.observe("fleet.energy_j", result.total_energy_j)
        span.__exit__(None, None, None)
    return result


def compare_fleet_policies(fleet: FleetSpec, trace: TraceSpec,
                           policies: Sequence[str] = PLACEMENT_POLICIES,
                           engine: Optional[ExecutionEngine] = None,
                           observer: Optional[Observer] = None,
                           dispatch_mode: str = "reference",
                           chunk_size: int = DEFAULT_CHUNK_SIZE
                           ) -> FleetComparisonResult:
    """Route the same trace under each policy (cells resolve once -
    the engine cache dedupes across policies)."""
    results = tuple(
        run_fleet(fleet, trace, policy=policy, engine=engine,
                  observer=observer, dispatch_mode=dispatch_mode,
                  chunk_size=chunk_size)
        for policy in policies)
    return FleetComparisonResult(fleet=fleet, trace=trace, results=results)


# -- streaming dispatch ----------------------------------------------------------
#
# The reference loop above materializes one RequestOutcome and one
# DecisionRecord per request and sorts every latency at the end -
# O(requests) objects, hopeless at millions of requests.  The
# streaming pipeline below routes the same trace from its chunked
# columnar form (repro.fleet.trace.trace_columns): vectorized
# placement for the stateless policies, round-major FIFO scheduling,
# bucketed completion retirement for the stateful ones, and streaming
# accounting (quantile sketch, incremental column fingerprints,
# sampled decision records).  Placement decisions and per-request
# timestamps are byte-identical to the reference loop; the
# cross-mode lock is FleetResult.stream_fingerprint() ==
# FleetStreamResult.fingerprint().

#: Column schema of the streaming fingerprint: (name, little-endian
#: dtype) in fixed order.  Each column hashes its raw bytes across
#: chunks, so the digest is chunk-size independent.
_STREAM_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("workload_idx", "<u2"),
    ("t_arrival_s", "<f8"),
    ("deadline_s", "<f8"),
    ("node_index", "<i4"),
    ("t_start_s", "<f8"),
    ("t_complete_s", "<f8"),
)


class _ColumnDigests:
    """One running sha256 per outcome column (order-preserving)."""

    def __init__(self) -> None:
        self._hashers = {name: hashlib.sha256()
                         for name, _ in _STREAM_COLUMNS}

    def update(self, **columns: np.ndarray) -> None:
        for name, dtype in _STREAM_COLUMNS:
            block = np.ascontiguousarray(columns[name], dtype=dtype)
            self._hashers[name].update(block.tobytes())

    def lines(self) -> List[str]:
        return [f"col|{name}|{self._hashers[name].hexdigest()}"
                for name, _ in _STREAM_COLUMNS]


def _fold_stream_digest(fleet: FleetSpec, trace: TraceSpec, policy: str,
                        cells: Tuple[FleetCellProfile, ...],
                        digests: "_ColumnDigests", n_requests: int) -> str:
    lines = [
        f"fleet|{fleet.canonical()}",
        f"trace|{trace.canonical()}",
        f"policy|{policy}",
        "mode|stream-v1",
    ]
    lines.extend(f"cell|{c.canonical()}" for c in cells)
    lines.extend(digests.lines())
    lines.append(f"n|{n_requests}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class _BucketRetirement:
    """K-way merge retirement: per-node FIFO queues + a heap of heads.

    A node completes its queue in dispatch order (per-node
    ``t_complete`` is nondecreasing), so the globally earliest pending
    completion is always one of the per-node queue heads.  A heap over
    at most ``n_nodes`` heads therefore replays the reference loop's
    ``(t_complete, seq)`` pop order exactly - equal instants break on
    the dispatch sequence, seq is unique - while per-request cost
    drops from heap churn over all in-flight work to one deque append.
    """

    def __init__(self, n_nodes: int) -> None:
        self._queues: List[deque] = [deque() for _ in range(n_nodes)]
        #: (t_complete, seq, node index) per non-empty queue head.
        self._heads: List[Tuple[float, int, int]] = []

    def push(self, node: int, t_complete: float, seq: int,
             payload: Tuple) -> None:
        queue = self._queues[node]
        queue.append((t_complete, seq, payload))
        if len(queue) == 1:
            heapq.heappush(self._heads, (t_complete, seq, node))

    def pop_until(self, until: float) -> Iterator[Tuple[int, Tuple]]:
        while self._heads and self._heads[0][0] <= until:
            _, _, node = heapq.heappop(self._heads)
            queue = self._queues[node]
            _, _, payload = queue.popleft()
            if queue:
                heapq.heappush(self._heads,
                               (queue[0][0], queue[0][1], node))
            yield node, payload


def _fifo_schedule(arrivals: np.ndarray, service: np.ndarray,
                   nodes_ch: np.ndarray, free_at: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-node FIFO scheduling, bit-exact vs the loop.

    Requests arrive in chunk order; each node serves its own requests
    FIFO (``t_start = max(arrival, free_at)``).  Grouping by node and
    processing round-major (every node's r-th request in one block)
    performs the exact same float max/add per request as the scalar
    loop - only batched - so start/complete times match to the bit.
    Mutates ``free_at`` in place.
    """
    m = len(arrivals)
    t_start = np.empty(m, dtype=np.float64)
    t_complete = np.empty(m, dtype=np.float64)
    if m == 0:
        return t_start, t_complete
    order = np.argsort(nodes_ch, kind="stable")
    sorted_nodes = nodes_ch[order]
    new_segment = np.empty(m, dtype=bool)
    new_segment[0] = True
    new_segment[1:] = sorted_nodes[1:] != sorted_nodes[:-1]
    segment_id = np.cumsum(new_segment) - 1
    segment_start = np.flatnonzero(new_segment)
    rank = np.arange(m, dtype=np.int64) - segment_start[segment_id]
    by_round = np.argsort(rank, kind="stable")
    counts = np.bincount(rank)
    offset = 0
    for count in counts:
        sel = order[by_round[offset:offset + count]]
        offset += count
        nd = nodes_ch[sel]  # one request per node within a round
        start = np.maximum(arrivals[sel], free_at[nd])
        complete = start + service[sel]
        free_at[nd] = complete
        t_start[sel] = start
        t_complete[sel] = complete
    return t_start, t_complete


@dataclass
class FleetStreamResult:
    """Streaming-mode routing result: aggregates, not outcomes.

    Mirrors the :class:`FleetResult` read API (request counts, energy,
    latency percentiles, misses, fingerprints, render) so comparisons
    and the CLI treat both modes uniformly - but holds O(nodes +
    sketch + sampled records) state, never O(requests).
    """

    fleet: FleetSpec
    trace: TraceSpec
    policy: str
    chunk_size: int
    n_chunks: int
    n_requests: int
    cells: Tuple[FleetCellProfile, ...]
    cells_executed: int
    dispatch_counts: Dict[str, int]
    energy_total_j: float
    makespan_s: float
    deadline_misses: int
    sketch: LatencySketch
    busy_s_by_node: np.ndarray
    #: Sampled placement audit records: every ``sample_stride``-th
    #: request plus every deadline miss, capped at
    #: :data:`MAX_SAMPLED_RECORDS`.
    placement_records: Tuple[DecisionRecord, ...]
    #: Exact count of requests that *matched* the sampling criteria
    #: (kept + dropped by the cap) - nothing is lost silently.
    records_matched: int
    sample_stride: int
    digest: str

    # -- accounting (FleetResult-compatible surface) -----------------------------

    @property
    def total_energy_j(self) -> float:
        """Busy energy, computed exactly as sum(cell count x cell
        energy) - chunk-size independent."""
        return self.energy_total_j

    @property
    def miss_rate(self) -> float:
        return (self.deadline_misses / self.n_requests
                if self.n_requests else 0.0)

    @property
    def mean_latency_s(self) -> float:
        return self.sketch.mean

    def latency_percentile_s(self, pct: float) -> float:
        """Nearest-rank percentile from the sketch (relative error at
        most ``sketch.rel_err``; see docs/FLEET.md)."""
        return self.sketch.quantile(pct)

    def dispatches_by_kind(self) -> Dict[str, int]:
        return dict(self.dispatch_counts)

    @property
    def idle_energy_estimate_j(self) -> float:
        horizon = self.makespan_s
        idle_power = {
            kind: self.fleet.platform_spec(kind).idle_power_w
            for kind in ("desktop", "tablet")}
        total = 0.0
        for node in self.fleet.nodes():
            busy = float(self.busy_s_by_node[node.index])
            total += idle_power[node.platform_kind] * max(
                0.0, horizon - busy)
        return total

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """The incremental column digest (chunk-size independent);
        byte-equal to :meth:`FleetResult.stream_fingerprint`."""
        return self.digest

    def stream_fingerprint(self) -> str:
        return self.digest

    def render(self) -> str:
        kinds = self.dispatches_by_kind()
        rows = [
            ("requests", f"{self.n_requests} "
                         f"({self.n_chunks} chunks of <= {self.chunk_size})"),
            ("nodes", f"{self.fleet.n_nodes} "
                      f"({self.fleet.desktop_fraction:.0%} desktop)"),
            ("distinct cells", f"{len(self.cells)} "
                               f"({self.cells_executed} executed, rest "
                               f"cached/deduped)"),
            ("dispatches", f"desktop={kinds.get('desktop', 0)} "
                           f"tablet={kinds.get('tablet', 0)}"),
            ("fleet energy (busy)", f"{self.total_energy_j:.1f} J"),
            ("idle-floor estimate", f"{self.idle_energy_estimate_j:.1f} J "
                                    f"over {self.makespan_s:.1f} s"),
            ("mean latency", f"{self.mean_latency_s:.2f} s"),
            ("p95 latency", f"{self.latency_percentile_s(95):.2f} s "
                            f"(sketch, +/-{self.sketch.rel_err:.0%})"),
            ("deadline misses", f"{self.deadline_misses} "
                                f"({self.miss_rate:.1%})"),
            ("sampled records", f"{len(self.placement_records)} kept of "
                                f"{self.records_matched} matched "
                                f"(stride {self.sample_stride} + misses)"),
        ]
        return "\n".join([
            heading(f"Fleet dispatch (streaming): policy={self.policy}, "
                    f"trace={self.trace.kind}"),
            format_table(["quantity", "value"], rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


def dispatch_stream(fleet: FleetSpec, trace: TraceSpec,
                    policy: str = "energy_aware",
                    engine: Optional[ExecutionEngine] = None,
                    observer: Optional[Observer] = None,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    sample_stride: int = DEFAULT_SAMPLE_STRIDE,
                    max_records: int = MAX_SAMPLED_RECORDS
                    ) -> FleetStreamResult:
    """Route ``trace`` over ``fleet`` via the streaming pipeline.

    Identical placement decisions and per-request timestamps to
    :func:`run_fleet` in reference mode (the cross-mode fingerprint
    lock), at O(nodes + chunk) dispatch state instead of O(requests).
    Stateless policies (random / round_robin / least_loaded) run as
    block operations; the view-reading policies (energy_aware /
    deadline_aware) run scalar over the columnar chunks with bucketed
    completion retirement.
    """
    if fleet.carbon is not None:
        raise HarnessError(
            "streaming dispatch does not support carbon-aware fleets "
            "yet (temporal shifting reorders the request stream); use "
            "dispatch_mode='reference'")
    if engine is None:
        engine = get_default_engine()
    if chunk_size <= 0:
        raise HarnessError("chunk_size must be positive")
    if sample_stride <= 0:
        raise HarnessError("sample_stride must be positive")
    obs = observer if observer is not None and observer.enabled else None
    placer = make_policy(policy, seed=fleet.seed)  # validates the name
    nodes = fleet.nodes()
    n_nodes = len(nodes)
    view = FleetView(nodes)
    workloads = trace.workloads
    t_col, w_col, d_col = trace_columns(trace)
    n_requests = len(t_col)

    if obs is not None:
        span = obs.span("fleet.run", policy=policy, nodes=n_nodes,
                        trace=trace.kind, requests=n_requests,
                        mode="streaming")
        span.__enter__()

    # Eligibility + cell resolution (same batch, same order, same
    # first-bad-request error as the reference's _resolve_cells).
    present = [int(wi) for wi in np.unique(w_col)]
    bad = [wi for wi in present
           if not view.eligible_kinds(workloads[wi])]
    if bad:
        bad_mask = np.isin(w_col, np.asarray(bad, dtype=w_col.dtype))
        first = int(np.argmax(bad_mask))
        raise HarnessError(
            f"request {first}: no node in this fleet can run "
            f"workload {workloads[int(w_col[first])]!r}")
    pairs = sorted({(kind, workloads[wi]) for wi in present
                    for kind in view.eligible_kinds(workloads[wi])})
    profiles, executed = _run_cell_batch(fleet, pairs, engine, obs)
    cells = tuple(profiles[pair] for pair in pairs)

    # Lookup tables: service/energy/alpha per (class, workload) cell,
    # class per node, eligible node sets per workload (desktop block
    # then tablet block, ascending - the FleetView order).
    n_workloads = len(workloads)
    svc_table = np.full((2, n_workloads), np.nan)
    energy_table = np.full((2, n_workloads), np.nan)
    alpha_table = np.zeros((2, n_workloads))
    eligible_kind_mask = np.zeros((2, n_workloads), dtype=bool)
    for (kind, workload), profile in profiles.items():
        k = _PLATFORM_ORDER.index(kind)
        wi = workloads.index(workload)
        svc_table[k, wi] = profile.time_s
        energy_table[k, wi] = profile.energy_j
        alpha_table[k, wi] = profile.final_alpha or 0.0
        eligible_kind_mask[k, wi] = True
    node_kind = np.array(
        [_PLATFORM_ORDER.index(n.platform_kind) for n in nodes],
        dtype=np.int64)
    node_names = [n.name for n in nodes]
    eligible_by_w = {
        wi: np.asarray(view.eligible_nodes(workloads[wi]), dtype=np.int64)
        for wi in present}

    if policy == "random":
        # The policy's exact RNG stream, drawn in arrival order; only
        # the gather into node indices is vectorized.
        rng = random.Random(fleet.seed ^ RANDOM_POLICY_SALT)
        max_eligible = max(
            (len(v) for v in eligible_by_w.values()), default=1)
        eligible_matrix = np.zeros((n_workloads, max_eligible),
                                   dtype=np.int64)
        eligible_sizes = np.ones(n_workloads, dtype=np.int64)
        for wi, arr in eligible_by_w.items():
            eligible_matrix[wi, :len(arr)] = arr
            eligible_sizes[wi] = len(arr)
    rr_cursor = 0
    # Cursor arithmetic only holds when every node is eligible for
    # every workload the trace contains; otherwise the scalar cursor
    # scan below replays the reference exactly.
    rr_uniform = all(len(eligible_by_w[wi]) == n_nodes for wi in present)
    stateful = policy in ("energy_aware", "deadline_aware")
    retirement = _BucketRetirement(n_nodes) if stateful else None

    free_at = np.zeros(n_nodes, dtype=np.float64)
    busy_s = np.zeros(n_nodes, dtype=np.float64)
    cell_counts = np.zeros((2, n_workloads), dtype=np.int64)
    sketch = LatencySketch()
    digests = _ColumnDigests()
    makespan = 0.0
    misses_total = 0
    records: List[DecisionRecord] = []
    records_matched = 0
    n_chunks = 0

    for start in range(0, n_requests, chunk_size):
        stop = min(start + chunk_size, n_requests)
        t_ch = t_col[start:stop]
        w_ch = w_col[start:stop]
        d_ch = d_col[start:stop]
        m = stop - start
        chunk_started = time.perf_counter()
        chunk_span = None
        if obs is not None:
            chunk_span = obs.span("fleet.dispatch.chunk",
                                  index=n_chunks, start_id=start,
                                  requests=m)
            chunk_span.__enter__()

        reasons: Dict[int, str] = {}
        if policy == "random":
            sizes = eligible_sizes[w_ch]
            draws = np.fromiter(
                (rng.randrange(s) for s in sizes.tolist()),
                dtype=np.int64, count=m)
            nodes_ch = eligible_matrix[w_ch, draws]
            service = svc_table[node_kind[nodes_ch], w_ch]
            ts_ch, tc_ch = _fifo_schedule(t_ch, service, nodes_ch, free_at)
        elif policy == "round_robin":
            if rr_uniform:
                nodes_ch = (rr_cursor
                            + np.arange(m, dtype=np.int64)) % n_nodes
                rr_cursor = int((rr_cursor + m) % n_nodes)
            else:
                nodes_ch = np.empty(m, dtype=np.int64)
                for i in range(m):
                    wi = int(w_ch[i])
                    for step in range(n_nodes):
                        idx = (rr_cursor + step) % n_nodes
                        if eligible_kind_mask[node_kind[idx], wi]:
                            nodes_ch[i] = idx
                            rr_cursor = idx + 1
                            break
            service = svc_table[node_kind[nodes_ch], w_ch]
            ts_ch, tc_ch = _fifo_schedule(t_ch, service, nodes_ch, free_at)
        elif policy == "least_loaded":
            # Sequential by nature (each dispatch moves free_at), but
            # the inner argmin over eligible backlogs is one C-level
            # pass; first-of-equals == the reference's strict-< scan.
            nodes_ch = np.empty(m, dtype=np.int64)
            ts_ch = np.empty(m, dtype=np.float64)
            tc_ch = np.empty(m, dtype=np.float64)
            for i in range(m):
                wi = int(w_ch[i])
                now = t_ch[i]
                eligible = eligible_by_w[wi]
                backlog = np.maximum(free_at[eligible] - now, 0.0)
                idx = int(eligible[int(backlog.argmin())])
                t_start = max(now, free_at[idx])
                t_complete = t_start + svc_table[node_kind[idx], wi]
                free_at[idx] = t_complete
                nodes_ch[i] = idx
                ts_ch[i] = t_start
                tc_ch[i] = t_complete
        else:
            # Stateful policies: the real FleetView + policy object
            # over columnar chunks, with bucketed retirement feeding
            # the view's completion stats in exact reference order.
            nodes_ch = np.empty(m, dtype=np.int64)
            ts_ch = np.empty(m, dtype=np.float64)
            tc_ch = np.empty(m, dtype=np.float64)
            reason_budget = max_records - len(records)
            for i in range(m):
                t = float(t_ch[i])
                wi = int(w_ch[i])
                workload = workloads[wi]
                view.now = t
                for node_i, payload in retirement.pop_until(t):
                    view.note_completion(node_i, payload[0],
                                         payload[1], payload[2])
                request = FleetRequest(
                    req_id=start + i, t_arrival_s=t,
                    workload=workload, deadline_s=float(d_ch[i]))
                node_index, reason = placer.place(view, request)
                if not view.is_eligible(node_index, workload):
                    raise HarnessError(
                        f"policy {policy!r} placed {workload!r} on "
                        f"ineligible node {view.nodes[node_index].name}")
                profile = profiles[
                    (view.nodes[node_index].platform_kind, workload)]
                t_start = max(t, view.free_at[node_index])
                t_complete = t_start + profile.time_s
                view.note_dispatch(node_index, workload, t_complete)
                retirement.push(
                    node_index, t_complete, start + i,
                    (workload, t_complete - t_start, profile.energy_j))
                nodes_ch[i] = node_index
                ts_ch[i] = t_start
                tc_ch[i] = t_complete
                if (((start + i) % sample_stride == 0
                     or (t_complete - t) > request.deadline_s)
                        and len(reasons) < reason_budget):
                    reasons[i] = reason

        # -- shared per-chunk accounting ---------------------------------------
        kind_idx = node_kind[nodes_ch]
        if not bool(np.all(eligible_kind_mask[kind_idx, w_ch])):
            bad_i = int(np.argmin(eligible_kind_mask[kind_idx, w_ch]))
            raise HarnessError(
                f"policy {policy!r} placed "
                f"{workloads[int(w_ch[bad_i])]!r} on ineligible node "
                f"{node_names[int(nodes_ch[bad_i])]}")
        latency = tc_ch - t_ch
        missed = latency > d_ch
        n_missed = int(np.count_nonzero(missed))
        misses_total += n_missed
        if m:
            makespan = max(makespan, float(tc_ch.max()))
        sketch.add_batch(latency)
        np.add.at(cell_counts, (kind_idx, w_ch.astype(np.int64)), 1)
        np.add.at(busy_s, nodes_ch, tc_ch - ts_ch)
        digests.update(workload_idx=w_ch, t_arrival_s=t_ch,
                       deadline_s=d_ch, node_index=nodes_ch,
                       t_start_s=ts_ch, t_complete_s=tc_ch)

        global_idx = np.arange(start, stop, dtype=np.int64)
        sample_mask = ((global_idx % sample_stride) == 0) | missed
        records_matched += int(np.count_nonzero(sample_mask))
        new_records_from = len(records)
        if len(records) < max_records:
            budget = max_records - len(records)
            for i in np.flatnonzero(sample_mask)[:budget].tolist():
                idx = int(nodes_ch[i])
                wi = int(w_ch[i])
                if stateful:
                    reason = reasons.get(i, "")
                elif policy == "random":
                    reason = "uniform"
                elif policy == "round_robin":
                    reason = "cursor"
                else:
                    reason = f"backlog={ts_ch[i] - t_ch[i]:.3f}s"
                records.append(DecisionRecord(
                    exit_path=EXIT_FLEET_PLACEMENT,
                    kernel=workloads[wi],
                    alpha=float(alpha_table[node_kind[idx], wi]),
                    tenant=node_names[idx],
                    sim_time_s=float(t_ch[i]),
                    notes=[f"policy:{policy}",
                           f"node:{node_names[idx]}",
                           f"reason:{reason}",
                           f"deadline_s:{float(d_ch[i]):.1f}"]))

        if obs is not None:
            elapsed = time.perf_counter() - chunk_started
            obs.inc("fleet.dispatch.requests", m)
            obs.inc("fleet.dispatches", m)
            kind_counts = np.bincount(kind_idx, minlength=2)
            obs.inc("fleet.dispatches.desktop", int(kind_counts[0]))
            obs.inc("fleet.dispatches.tablet", int(kind_counts[1]))
            obs.inc("fleet.deadline_misses", n_missed)
            obs.set_gauge("fleet.dispatch.req_per_s",
                          m / elapsed if elapsed > 0.0 else 0.0)
            fa = (np.asarray(view.free_at) if stateful else free_at)
            now_end = float(t_ch[-1]) if m else 0.0
            obs.set_gauge("fleet.backlog", float(
                np.sum(np.maximum(fa - now_end, 0.0))))
            for record in records[new_records_from:]:
                obs.decision(record)
            chunk_span.__exit__(None, None, None)
        n_chunks += 1

    energy_safe = np.where(np.isnan(energy_table), 0.0, energy_table)
    energy_total = float(np.sum(cell_counts * energy_safe))
    dispatch_counts = {"desktop": int(cell_counts[0].sum()),
                       "tablet": int(cell_counts[1].sum())}
    digest = _fold_stream_digest(fleet, trace, policy, cells, digests,
                                 n_requests)
    result = FleetStreamResult(
        fleet=fleet, trace=trace, policy=policy,
        chunk_size=chunk_size, n_chunks=n_chunks,
        n_requests=n_requests, cells=cells, cells_executed=executed,
        dispatch_counts=dispatch_counts, energy_total_j=energy_total,
        makespan_s=makespan, deadline_misses=misses_total,
        sketch=sketch, busy_s_by_node=busy_s,
        placement_records=tuple(records),
        records_matched=records_matched, sample_stride=sample_stride,
        digest=digest)
    if obs is not None:
        obs.set_gauge("fleet.nodes", n_nodes)
        obs.observe("fleet.energy_j", result.total_energy_j)
        span.__exit__(None, None, None)
    return result
