"""The global dispatcher: an event-driven loop over the arrival trace.

Two phases, both deterministic:

1. **Cell resolution.**  Every (platform class, workload) pair the
   trace could touch becomes one ``fleet-cell``
   :class:`~repro.harness.engine.RunSpec`, submitted as a single
   engine batch - parallel under ``--jobs N``, deduped by the
   content-addressed cache, byte-identical serial vs pooled (the
   engine's own guarantee).  A thousand-node fleet costs as many
   simulations as it has distinct cells.

2. **Dispatch.**  Requests replay in arrival order; a pending-completion
   heap (keyed ``(t_complete, dispatch seq)``) retires finished work
   before each arrival, so placement policies observe exactly the
   completions a real-time dispatcher would have seen.  Placement
   reads only the :class:`~repro.fleet.policies.FleetView`; the
   simulated execution itself is the phase-1 profile (per-node EAS
   stays black-box).

Determinism contract (docs/FLEET.md): same
(:class:`~repro.fleet.topology.FleetSpec`,
:class:`~repro.fleet.trace.TraceSpec`, policy) in, byte-identical
:meth:`FleetResult.fingerprint` out - on reruns, across ``--jobs N``,
and across processes.  Every tie anywhere (equal arrival times, equal
backlogs, equal completion instants) breaks on an explicit integer
(request id, node index, dispatch sequence), never on iteration
order of a hash container.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.fleet.cells import FleetCellProfile
from repro.fleet.policies import (
    PLACEMENT_POLICIES,
    FleetView,
    make_policy,
)
from repro.fleet.topology import FleetSpec
from repro.fleet.trace import FleetRequest, TraceSpec
from repro.harness.engine import (
    KIND_FLEET_CELL,
    ExecutionEngine,
    RunSpec,
    SchedulerSpec,
    get_default_engine,
)
from repro.harness.report import format_table, heading
from repro.obs.observer import Observer
from repro.obs.records import DecisionRecord

#: ``exit_path`` tag on fleet placement decision records (the node-
#: level records keep the scheduler's own Fig.-7 exit paths).
EXIT_FLEET_PLACEMENT = "fleet-placement"


@dataclass(frozen=True)
class RequestOutcome:
    """One routed request, end to end, on the fleet clock."""

    req_id: int
    workload: str
    #: Stable node id (``<kind>-<index>``), also on the decision record.
    node: str
    node_index: int
    platform_kind: str
    t_arrival_s: float
    t_start_s: float
    t_complete_s: float
    #: Relative latency budget the request arrived with.
    deadline_s: float
    #: Software-visible energy of the node-level run, joules.
    energy_j: float

    @property
    def latency_s(self) -> float:
        return self.t_complete_s - self.t_arrival_s

    @property
    def missed_deadline(self) -> bool:
        return self.latency_s > self.deadline_s

    def canonical(self) -> str:
        return (f"{self.req_id}|{self.workload}|{self.node}"
                f"|{self.t_arrival_s!r}|{self.t_start_s!r}"
                f"|{self.t_complete_s!r}|{self.deadline_s!r}"
                f"|{self.energy_j!r}")


@dataclass
class FleetResult:
    """One policy's routing of one trace over one fleet."""

    fleet: FleetSpec
    trace: TraceSpec
    policy: str
    outcomes: Tuple[RequestOutcome, ...]
    #: Distinct cell profiles the dispatch drew on, sorted by
    #: (platform_kind, workload).
    cells: Tuple[FleetCellProfile, ...]
    #: Per-request placement audit records (node-id tagged); excluded
    #: from the fingerprint, same contract as chaos decision records.
    placement_records: Tuple[DecisionRecord, ...] = ()
    #: Engine executions vs cache recalls for the cell batch.
    cells_executed: int = 0

    # -- accounting --------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.outcomes)

    @property
    def total_energy_j(self) -> float:
        """Busy (active-execution) energy across the fleet, joules -
        the quantity placement actually moves."""
        return sum(o.energy_j for o in self.outcomes)

    @property
    def makespan_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return max(o.t_complete_s for o in self.outcomes)

    @property
    def idle_energy_estimate_j(self) -> float:
        """Fleet idle-floor energy over the makespan: every node burns
        its spec idle power whenever not executing.  Reported apart
        from :attr:`total_energy_j` because for a fixed fleet and
        horizon it is (near-)policy-invariant - folding it into the
        headline number would only dilute the placement signal."""
        horizon = self.makespan_s
        busy_by_node: Dict[int, float] = {}
        for outcome in self.outcomes:
            busy_by_node[outcome.node_index] = (
                busy_by_node.get(outcome.node_index, 0.0)
                + (outcome.t_complete_s - outcome.t_start_s))
        idle_power = {
            kind: self.fleet.platform_spec(kind).idle_power_w
            for kind in ("desktop", "tablet")}
        total = 0.0
        for node in self.fleet.nodes():
            busy = busy_by_node.get(node.index, 0.0)
            total += idle_power[node.platform_kind] * max(
                0.0, horizon - busy)
        return total

    @property
    def deadline_misses(self) -> int:
        return sum(1 for o in self.outcomes if o.missed_deadline)

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.n_requests if self.outcomes else 0.0

    @property
    def mean_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_s for o in self.outcomes) / len(self.outcomes)

    def latency_percentile_s(self, pct: float) -> float:
        """Nearest-rank percentile of request latency."""
        if not self.outcomes:
            return 0.0
        ordered = sorted(o.latency_s for o in self.outcomes)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def dispatches_by_kind(self) -> Dict[str, int]:
        counts = {"desktop": 0, "tablet": 0}
        for outcome in self.outcomes:
            counts[outcome.platform_kind] += 1
        return counts

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over specs, policy, cells, and every outcome."""
        lines = [
            f"fleet|{self.fleet.canonical()}",
            f"trace|{self.trace.canonical()}",
            f"policy|{self.policy}",
        ]
        lines.extend(f"cell|{c.canonical()}" for c in self.cells)
        lines.extend(o.canonical() for o in self.outcomes)
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def render(self) -> str:
        kinds = self.dispatches_by_kind()
        rows = [
            ("requests", f"{self.n_requests}"),
            ("nodes", f"{self.fleet.n_nodes} "
                      f"({self.fleet.desktop_fraction:.0%} desktop)"),
            ("distinct cells", f"{len(self.cells)} "
                               f"({self.cells_executed} executed, rest "
                               f"cached/deduped)"),
            ("dispatches", f"desktop={kinds['desktop']} "
                           f"tablet={kinds['tablet']}"),
            ("fleet energy (busy)", f"{self.total_energy_j:.1f} J"),
            ("idle-floor estimate", f"{self.idle_energy_estimate_j:.1f} J "
                                    f"over {self.makespan_s:.1f} s"),
            ("mean latency", f"{self.mean_latency_s:.2f} s"),
            ("p95 latency", f"{self.latency_percentile_s(95):.2f} s"),
            ("deadline misses", f"{self.deadline_misses} "
                                f"({self.miss_rate:.1%})"),
        ]
        return "\n".join([
            heading(f"Fleet dispatch: policy={self.policy}, "
                    f"trace={self.trace.kind}"),
            format_table(["quantity", "value"], rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


@dataclass
class FleetComparisonResult:
    """Several policies routing the *same* trace over the same fleet."""

    fleet: FleetSpec
    trace: TraceSpec
    results: Tuple[FleetResult, ...]

    def result(self, policy: str) -> FleetResult:
        for result in self.results:
            if result.policy == policy:
                return result
        raise HarnessError(f"no result for policy {policy!r}")

    def fingerprint(self) -> str:
        lines = [f"{r.policy}|{r.fingerprint()}" for r in self.results]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def render(self) -> str:
        rows = []
        for r in self.results:
            kinds = r.dispatches_by_kind()
            rows.append((
                r.policy, r.n_requests, f"{r.total_energy_j:.1f}",
                f"{r.mean_latency_s:.2f}",
                f"{r.latency_percentile_s(95):.2f}",
                f"{r.deadline_misses} ({r.miss_rate:.1%})",
                f"{kinds['desktop']}/{kinds['tablet']}",
            ))
        return "\n".join([
            heading(f"Fleet policy comparison: {self.fleet.n_nodes} nodes, "
                    f"{self.trace.kind} trace, "
                    f"{len(self.trace.requests())} requests"),
            format_table(
                ["policy", "reqs", "energy (J)", "mean lat (s)",
                 "p95 lat (s)", "misses", "desktop/tablet"], rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


# -- the dispatch loop -----------------------------------------------------------

def _resolve_cells(fleet: FleetSpec, requests: Sequence[FleetRequest],
                   view: FleetView, engine: ExecutionEngine,
                   observer: Optional[Observer]
                   ) -> Tuple[Dict[Tuple[str, str], FleetCellProfile], int]:
    """One engine batch covering every reachable (class, workload) cell."""
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for request in requests:
        kinds = view.eligible_kinds(request.workload)
        if not kinds:
            raise HarnessError(
                f"request {request.req_id}: no node in this fleet can run "
                f"workload {request.workload!r}")
        for kind in kinds:
            if (kind, request.workload) not in seen:
                seen.add((kind, request.workload))
                pairs.append((kind, request.workload))
    pairs.sort()
    specs = [
        RunSpec(platform=fleet.platform_spec(kind), workload=workload,
                scheduler=SchedulerSpec.eas(metric=fleet.metric),
                kind=KIND_FLEET_CELL, tablet=(kind == "tablet"),
                seed=fleet.seed)
        for kind, workload in pairs]
    results = engine.run_batch(specs, observer=observer)
    executed = sum(1 for r in results if not r.from_cache)
    return ({pair: result.payload for pair, result in zip(pairs, results)},
            executed)


def run_fleet(fleet: FleetSpec, trace: TraceSpec,
              policy: str = "energy_aware",
              engine: Optional[ExecutionEngine] = None,
              observer: Optional[Observer] = None) -> FleetResult:
    """Route ``trace`` over ``fleet`` under one placement policy."""
    if engine is None:
        engine = get_default_engine()
    obs = observer if observer is not None and observer.enabled else None
    requests = trace.requests()
    view = FleetView(fleet.nodes())
    placer = make_policy(policy, seed=fleet.seed)

    if obs is not None:
        span = obs.span("fleet.run", policy=policy, nodes=fleet.n_nodes,
                        trace=trace.kind, requests=len(requests))
        span.__enter__()
    profiles, executed = _resolve_cells(fleet, requests, view, engine, obs)

    outcomes: List[RequestOutcome] = []
    records: List[DecisionRecord] = []
    # Pending completions: (t_complete, dispatch seq, outcome index).
    pending: List[Tuple[float, int, int]] = []
    seq = 0

    def retire(until: float) -> None:
        while pending and pending[0][0] <= until:
            _, _, outcome_index = heapq.heappop(pending)
            outcome = outcomes[outcome_index]
            view.note_completion(
                outcome.node_index, outcome.workload,
                outcome.t_complete_s - outcome.t_start_s, outcome.energy_j)
            if obs is not None:
                obs.inc("fleet.completions")
                if outcome.missed_deadline:
                    obs.inc("fleet.deadline_misses")
                obs.observe("fleet.latency_s", outcome.latency_s)

    for request in requests:
        view.now = request.t_arrival_s
        retire(request.t_arrival_s)
        node_index, reason = placer.place(view, request)
        if not view.is_eligible(node_index, request.workload):
            raise HarnessError(
                f"policy {policy!r} placed {request.workload!r} on "
                f"ineligible node {view.nodes[node_index].name}")
        node = view.nodes[node_index]
        profile = profiles[(node.platform_kind, request.workload)]
        t_start = max(request.t_arrival_s, view.free_at[node_index])
        t_complete = t_start + profile.time_s
        outcomes.append(RequestOutcome(
            req_id=request.req_id,
            workload=request.workload,
            node=node.name,
            node_index=node_index,
            platform_kind=node.platform_kind,
            t_arrival_s=request.t_arrival_s,
            t_start_s=t_start,
            t_complete_s=t_complete,
            deadline_s=request.deadline_s,
            energy_j=profile.energy_j))
        view.note_dispatch(node_index, request.workload, t_complete)
        heapq.heappush(pending, (t_complete, seq, len(outcomes) - 1))
        seq += 1
        records.append(DecisionRecord(
            exit_path=EXIT_FLEET_PLACEMENT,
            kernel=request.workload,
            alpha=profile.final_alpha or 0.0,
            tenant=node.name,
            sim_time_s=request.t_arrival_s,
            notes=[f"policy:{policy}", f"node:{node.name}",
                   f"reason:{reason}",
                   f"deadline_s:{request.deadline_s:.1f}"]))
        if obs is not None:
            obs.inc("fleet.dispatches")
            obs.inc(f"fleet.dispatches.{node.platform_kind}")

    retire(float("inf"))

    cells = tuple(profiles[pair] for pair in sorted(profiles))
    result = FleetResult(
        fleet=fleet, trace=trace, policy=policy,
        outcomes=tuple(outcomes), cells=cells,
        placement_records=tuple(records), cells_executed=executed)
    if obs is not None:
        for record in records:
            obs.decision(record)
        obs.set_gauge("fleet.nodes", fleet.n_nodes)
        obs.observe("fleet.energy_j", result.total_energy_j)
        span.__exit__(None, None, None)
    return result


def compare_fleet_policies(fleet: FleetSpec, trace: TraceSpec,
                           policies: Sequence[str] = PLACEMENT_POLICIES,
                           engine: Optional[ExecutionEngine] = None,
                           observer: Optional[Observer] = None
                           ) -> FleetComparisonResult:
    """Route the same trace under each policy (cells resolve once -
    the engine cache dedupes across policies)."""
    results = tuple(
        run_fleet(fleet, trace, policy=policy, engine=engine,
                  observer=observer)
        for policy in policies)
    return FleetComparisonResult(fleet=fleet, trace=trace, results=results)
