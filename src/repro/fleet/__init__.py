"""``repro.fleet``: trace-driven dispatch over thousands of SoCs.

The paper answers "which alpha on *this* die"; this package lifts the
question one level: *which node* in a heterogeneous fleet gets the
kernel.  An open-loop arrival trace (diurnal / bursty / adversarial,
all seeded) streams kernel requests at a fleet mixing
``haswell_desktop`` and ``baytrail_tablet`` nodes; a pluggable
placement policy routes each request; per-node execution is the
existing black-box EAS stack, fanned out through the
:class:`~repro.harness.engine.ExecutionEngine` and its
content-addressed cache (identical platform-class x workload cells
dedupe across the whole fleet).  See docs/FLEET.md.

Layers:

* :mod:`repro.fleet.trace` - seeded arrival-trace generators;
* :mod:`repro.fleet.topology` - :class:`FleetSpec` / :class:`NodeSpec`;
* :mod:`repro.fleet.policies` - the placement policies and the
  fleet-visible signal surface (:class:`FleetView`);
* :mod:`repro.fleet.cells` - one node-class execution profile, run as
  a ``fleet-cell`` :class:`~repro.harness.engine.RunSpec`;
* :mod:`repro.fleet.dispatcher` - the event-driven dispatch loop and
  the byte-stable :class:`FleetResult`.
"""

from repro.fleet.cells import FleetCellProfile, run_fleet_cell
from repro.fleet.dispatcher import (
    DISPATCH_MODES,
    FleetComparisonResult,
    FleetResult,
    FleetStreamResult,
    RequestOutcome,
    compare_fleet_policies,
    dispatch_stream,
    run_fleet,
)
from repro.fleet.policies import PLACEMENT_POLICIES, FleetView, make_policy
from repro.fleet.sketch import LatencySketch
from repro.fleet.topology import PLATFORM_KINDS, FleetSpec, NodeSpec
from repro.fleet.trace import (
    TRACE_KINDS,
    FleetRequest,
    TraceChunk,
    TraceSpec,
    generate_trace,
    iter_trace_chunks,
    trace_columns,
)

__all__ = [
    "DISPATCH_MODES",
    "FleetCellProfile",
    "FleetComparisonResult",
    "FleetRequest",
    "FleetResult",
    "FleetSpec",
    "FleetStreamResult",
    "FleetView",
    "LatencySketch",
    "NodeSpec",
    "PLACEMENT_POLICIES",
    "PLATFORM_KINDS",
    "RequestOutcome",
    "TRACE_KINDS",
    "TraceChunk",
    "TraceSpec",
    "compare_fleet_policies",
    "dispatch_stream",
    "generate_trace",
    "iter_trace_chunks",
    "make_policy",
    "run_fleet",
    "run_fleet_cell",
    "trace_columns",
]
