"""Unit constants and small conversion helpers.

All internal quantities in the library use SI base units: seconds,
joules, watts, hertz, and bytes.  Specs and papers quote GHz, GB/s,
milliseconds and microjoules, so these helpers keep conversions explicit
and greppable instead of scattering bare ``1e9`` literals around.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * MILLISECONDS


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return value * MICROSECONDS


def seconds_to_ms(value: float) -> float:
    """Seconds -> milliseconds."""
    return value / MILLISECONDS


# --- frequency ------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def ghz(value: float) -> float:
    """GHz -> Hz."""
    return value * GHZ


def mhz(value: float) -> float:
    """MHz -> Hz."""
    return value * MHZ


# --- data -----------------------------------------------------------------

KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3
CACHELINE_BYTES = 64


def gb_per_s(value: float) -> float:
    """GB/s (decimal) -> bytes/s."""
    return value * 1e9


# --- energy ---------------------------------------------------------------

#: Intel RAPL energy-status unit on Haswell-class parts: 1/2^14 J.
HASWELL_ENERGY_UNIT_J = 1.0 / (1 << 14)

#: Bay Trail (Silvermont) uses a coarser microjoule-scale unit.
BAYTRAIL_ENERGY_UNIT_J = 1.0 / (1 << 5) * 1e-3  # 31.25 uJ


def joules_to_units(joules: float, unit_j: float) -> int:
    """Quantize an energy amount to integral hardware energy units."""
    return int(joules / unit_j)


def units_to_joules(units: int, unit_j: float) -> float:
    """Convert integral hardware energy units back to joules."""
    return units * unit_j
