"""``repro.api``: the curated public API surface.

This module is the library's *blessed* import surface: everything a
downstream user should reach for is re-exported here (and from the
top-level :mod:`repro` package, which star-imports this module), and
``__all__`` below is the authoritative inventory.  The snapshot test
``tests/test_public_api.py`` pins this list - adding or removing a
name is an API change and must update the snapshot deliberately.

Grouped by layer:

* **errors** - the exception hierarchy callers may catch;
* **platforms & simulator** - the two simulated SoCs and their specs;
* **runtime** - ``parallel_for`` over the simulated processor;
* **schedulers** - EAS (with :class:`SchedulerConfig`), the hinted
  extension, and the comparison baselines;
* **characterization & metrics** - P(alpha) curves and objectives;
* **workloads** - the Table-1 benchmark suite;
* **harness** - application runs, sweeps, suite evaluation, figure
  regenerators, and the chaos campaign;
* **multiprogram tenancy** - N tenant kernel streams co-scheduled on
  one SoC under a GPU lease arbiter, which makes ``gpu_busy`` (and the
  scheduler's Section-5 fallback) real (see docs/ARCHITECTURE.md);
* **execution engine** - declarative run specs, the parallel batch
  executor, and the content-addressed result cache
  (see docs/PARALLELISM.md);
* **observability** - the flight recorder: observers, decision
  records, metric registries, exporters, and validators
  (see docs/OBSERVABILITY.md);
* **scheduler service** - the crash-safe persistent daemon: durable
  job queue, persisted table G, idempotent replay, and the
  kill-and-restart chaos harness (see docs/SERVICE.md);
* **fleet simulation** - trace-driven dispatch of kernel requests
  across thousands of simulated SoCs under pluggable placement
  policies, deduped through the engine cache (see docs/FLEET.md).

Deprecated (still exported, warn once per process): the
``use_tick_mode`` process-global context manager - pass
``tick_mode=...`` to the platform factories or specs instead - and
stringly ``RunSpec.tenancy`` strings, replaced by
:class:`TenancySpec`.
"""

from __future__ import annotations

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    RaceToIdleScheduler,
    StaticAlphaScheduler,
)
from repro.core.characterization import PlatformCharacterization
from repro.core.hinted import HintedEnergyAwareScheduler
from repro.core.metrics import (
    ED2,
    EDP,
    ENERGY,
    ConstrainedMetric,
    EnergyMetric,
    metric_by_name,
)
from repro.core.scheduler import (
    EasConfig,
    EnergyAwareScheduler,
    SchedulerConfig,
)
from repro.errors import (
    AdmissionError,
    GpuFaultError,
    HarnessError,
    ObservabilityError,
    ReproError,
    SchedulingError,
    ServiceError,
    SimulationError,
    StoreSchemaError,
    UnknownNameError,
    WorkloadError,
)
from repro.harness.chaos import (
    ChaosCampaignResult,
    ChaosCell,
    MultiprogramChaosCampaignResult,
    run_chaos_campaign,
    run_multiprogram_chaos_campaign,
)
from repro.harness.diff import (
    DiffCase,
    DiffReport,
    compare_outcomes,
    diff_case,
    grid_cases,
    run_case,
)
from repro.harness.engine import (
    ExecutionEngine,
    ResultCache,
    RunResult,
    RunSpec,
    SchedulerSpec,
    SpecGang,
    execute_gang,
    get_default_engine,
    set_default_engine,
    use_engine,
)
from repro.harness.crashchaos import (
    CrashChaosCell,
    CrashChaosResult,
    run_crash_chaos,
)
from repro.fleet import (
    DISPATCH_MODES,
    PLACEMENT_POLICIES,
    PLATFORM_KINDS,
    TRACE_KINDS,
    FleetCellProfile,
    FleetComparisonResult,
    FleetRequest,
    FleetResult,
    FleetSpec,
    FleetStreamResult,
    FleetView,
    LatencySketch,
    NodeSpec,
    RequestOutcome,
    TraceChunk,
    TraceSpec,
    compare_fleet_policies,
    dispatch_stream,
    generate_trace,
    iter_trace_chunks,
    make_policy,
    run_fleet,
    trace_columns,
)
from repro.harness.experiment import ApplicationRun, run_application
from repro.harness.figures import REGENERATORS, experiment_id, regenerate
from repro.harness.suite import (
    evaluate_suite,
    get_characterization,
    sweep_alphas,
)
from repro.obs import (
    ALL_EXIT_PATHS,
    NULL_OBSERVER,
    DecisionRecord,
    MetricsRegistry,
    NullObserver,
    Observer,
)
from repro.obs.export import (
    TraceSection,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.validate import validate_file
from repro.runtime.kernel import Kernel
from repro.service import (
    AdmissionDecision,
    AdmissionPolicy,
    DurableStore,
    JobSpec,
    SchedulerService,
)
from repro.runtime.runtime import ConcordRuntime
from repro.runtime.tenancy import (
    ARBITER_POLICIES,
    GpuLeaseArbiter,
    MultiprogramResult,
    TenancySpec,
    TenantResult,
    TenantSpec,
    parse_tenant_specs,
    run_multiprogram,
)
from repro.soc.carbon import CarbonSpec, CarbonTrace
from repro.soc.cost_model import KernelCostModel
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import (
    TICK_MODES,
    PlatformSpec,
    baytrail_tablet,
    haswell_desktop,
    use_tick_mode,
)
from repro.soc.vector import VectorCore, model_identity, use_vector_core
from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.registry import all_workloads, workload_by_abbrev

__all__ = [
    # errors
    "ReproError", "SimulationError", "SchedulingError", "WorkloadError",
    "HarnessError", "ObservabilityError", "UnknownNameError",
    "GpuFaultError", "ServiceError", "StoreSchemaError", "AdmissionError",
    # platforms & simulator
    "PlatformSpec", "haswell_desktop", "baytrail_tablet",
    "IntegratedProcessor", "KernelCostModel", "use_tick_mode",
    "TICK_MODES",
    # fault injection
    "FaultConfig", "FaultySoC",
    # runtime
    "Kernel", "ConcordRuntime",
    # schedulers
    "EnergyAwareScheduler", "SchedulerConfig", "EasConfig",
    "HintedEnergyAwareScheduler", "CpuOnlyScheduler", "GpuOnlyScheduler",
    "StaticAlphaScheduler", "ProfiledPerfScheduler", "RaceToIdleScheduler",
    # characterization & metrics (see docs/OBJECTIVES.md)
    "PlatformCharacterization", "get_characterization",
    "EnergyMetric", "ENERGY", "EDP", "ED2", "metric_by_name",
    "ConstrainedMetric",
    # workloads
    "Workload", "InvocationSpec", "all_workloads", "workload_by_abbrev",
    # harness
    "ApplicationRun", "run_application", "sweep_alphas", "evaluate_suite",
    "REGENERATORS", "regenerate", "experiment_id",
    "ChaosCampaignResult", "ChaosCell", "run_chaos_campaign",
    "MultiprogramChaosCampaignResult", "run_multiprogram_chaos_campaign",
    "CrashChaosResult", "CrashChaosCell", "run_crash_chaos",
    # multiprogram tenancy (see docs/ARCHITECTURE.md)
    "ARBITER_POLICIES", "GpuLeaseArbiter", "MultiprogramResult",
    "TenancySpec", "TenantResult", "TenantSpec", "parse_tenant_specs",
    "run_multiprogram",
    # execution engine (see docs/PARALLELISM.md)
    "ExecutionEngine", "RunSpec", "RunResult", "SchedulerSpec",
    "ResultCache", "get_default_engine", "set_default_engine", "use_engine",
    "SpecGang", "execute_gang",
    # vectorized-core sharing & differential testing (docs/PERFORMANCE.md)
    "VectorCore", "model_identity", "use_vector_core",
    "DiffCase", "DiffReport", "run_case", "diff_case", "grid_cases",
    "compare_outcomes",
    # observability
    "Observer", "NullObserver", "NULL_OBSERVER", "MetricsRegistry",
    "DecisionRecord", "ALL_EXIT_PATHS", "TraceSection",
    "write_chrome_trace", "write_jsonl", "write_metrics", "validate_file",
    # scheduler service (see docs/SERVICE.md)
    "SchedulerService", "JobSpec", "DurableStore",
    "AdmissionPolicy", "AdmissionDecision",
    # fleet simulation (see docs/FLEET.md)
    "FleetSpec", "NodeSpec", "PLATFORM_KINDS",
    "TraceSpec", "FleetRequest", "generate_trace", "TRACE_KINDS",
    "TraceChunk", "trace_columns", "iter_trace_chunks",
    "PLACEMENT_POLICIES", "make_policy", "FleetView",
    "run_fleet", "FleetResult", "RequestOutcome", "FleetCellProfile",
    "compare_fleet_policies", "FleetComparisonResult",
    # streaming fleet dispatch (docs/FLEET.md, "Streaming dispatch")
    "DISPATCH_MODES", "dispatch_stream", "FleetStreamResult",
    "LatencySketch",
    # carbon-aware scheduling (docs/OBJECTIVES.md)
    "CarbonSpec", "CarbonTrace",
]
