"""Interpreter-version compatibility helpers.

The package supports Python 3.9+ (see ``pyproject.toml``); features
adopted from newer interpreters are gated here so call sites stay
clean.
"""

from __future__ import annotations

import sys

#: Extra ``dataclass`` keyword arguments enabling ``__slots__`` where
#: the interpreter supports it (3.10+).  Applied to hot per-tick
#: dataclasses (trace samples, counter snapshots/deltas): slots drop
#: the per-instance ``__dict__``, roughly halving the memory of a
#: long power trace (measured in ``benchmarks/bench_sim_speed.py``).
#: On 3.9 the classes silently fall back to dict-based instances.
DATACLASS_SLOTS: "dict[str, bool]" = (
    {"slots": True} if sys.version_info >= (3, 10) else {})
