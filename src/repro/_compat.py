"""Interpreter-version compatibility helpers.

The package supports Python 3.9+ (see ``pyproject.toml``); features
adopted from newer interpreters are gated here so call sites stay
clean.
"""

from __future__ import annotations

import sys
import warnings

#: Extra ``dataclass`` keyword arguments enabling ``__slots__`` where
#: the interpreter supports it (3.10+).  Applied to hot per-tick
#: dataclasses (trace samples, counter snapshots/deltas): slots drop
#: the per-instance ``__dict__``, roughly halving the memory of a
#: long power trace (measured in ``benchmarks/bench_sim_speed.py``).
#: On 3.9 the classes silently fall back to dict-based instances.
DATACLASS_SLOTS: "dict[str, bool]" = (
    {"slots": True} if sys.version_info >= (3, 10) else {})

#: Deprecated spellings already warned about in this process.  Keyed
#: explicitly (not via the ``warnings`` registry, which per-module
#: ``simplefilter("always")`` resets) so each old spelling warns
#: exactly once per process however many times it is exercised - the
#: contract the shim tests pin.
_warned_once: "set[str]" = set()


def warn_once(key: str, message: str,
              category: "type[Warning]" = DeprecationWarning,
              stacklevel: int = 3) -> bool:
    """Emit ``message`` once per process for this ``key``.

    Returns True when the warning actually fired (first call for the
    key).  Deprecation shims across the package route through here so
    a hot loop over a legacy spelling produces one line, not thousands.
    """
    if key in _warned_once:
        return False
    _warned_once.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True
