"""Power characterization functions P(alpha).

Section 2: for each workload category the characterizer measures the
average package power of a micro-benchmark at a sweep of GPU offload
ratios, then fits a smooth curve; the paper found "a sixth-order
polynomial was a good fit".  A :class:`PowerCurve` is that polynomial
plus enough metadata to print the ``y = ...`` equations of Figs. 5-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import CharacterizationError

#: The paper's fit order.
DEFAULT_ORDER = 6


@dataclass(frozen=True)
class PowerCurve:
    """A polynomial P(alpha) over alpha in [0, 1], in watts.

    ``coefficients`` are highest-degree first (numpy poly1d layout).
    Evaluation clamps alpha into [0,1] and power to a small positive
    floor: a fitted polynomial can dip spuriously near the edges, and a
    negative "power" would let the optimizer chase nonsense.
    """

    coefficients: Tuple[float, ...]
    #: alpha/power samples the curve was fitted to (for reporting).
    sample_alphas: Tuple[float, ...] = ()
    sample_powers: Tuple[float, ...] = ()
    label: str = ""

    _POWER_FLOOR_W = 1e-3

    def __post_init__(self) -> None:
        if len(self.coefficients) < 1:
            raise CharacterizationError("curve needs at least one coefficient")

    @property
    def order(self) -> int:
        return len(self.coefficients) - 1

    def power(self, alpha: float) -> float:
        """P(alpha) in watts."""
        a = min(max(alpha, 0.0), 1.0)
        value = float(np.polyval(self.coefficients, a))
        return max(value, self._POWER_FLOOR_W)

    def __call__(self, alpha: float) -> float:
        return self.power(alpha)

    def fit_residual_rms(self) -> float:
        """RMS error of the fit against its own samples, watts."""
        if not self.sample_alphas:
            raise CharacterizationError("curve carries no samples")
        predicted = [self.power(a) for a in self.sample_alphas]
        err = np.asarray(predicted) - np.asarray(self.sample_powers)
        return float(np.sqrt(np.mean(err ** 2)))

    def equation(self, digits: int = 3) -> str:
        """Render the fitted polynomial like the y-equations of Fig. 5."""
        terms = []
        n = self.order
        for i, c in enumerate(self.coefficients):
            p = n - i
            coeff = round(c, digits)
            if coeff == 0:
                continue
            if p == 0:
                terms.append(f"{coeff:+g}")
            elif p == 1:
                terms.append(f"{coeff:+g}x")
            else:
                terms.append(f"{coeff:+g}x^{p}")
        body = " ".join(terms) if terms else "0"
        return f"y = {body}"


def fit_power_curve(alphas: Sequence[float], powers: Sequence[float],
                    order: int = DEFAULT_ORDER, label: str = "") -> PowerCurve:
    """Fit a power characterization polynomial to sweep measurements.

    Raises if the sweep is too sparse for the requested order (the
    paper sweeps 11+ points for its sixth-order fits).
    """
    alphas = tuple(float(a) for a in alphas)
    powers = tuple(float(p) for p in powers)
    if len(alphas) != len(powers):
        raise CharacterizationError("alphas and powers length mismatch")
    if len(alphas) < order + 1:
        raise CharacterizationError(
            f"need at least {order + 1} sweep points for an order-{order} "
            f"fit, got {len(alphas)}")
    if any(not 0.0 <= a <= 1.0 for a in alphas):
        raise CharacterizationError("alpha samples must lie in [0, 1]")
    if any(p < 0 for p in powers):
        raise CharacterizationError("negative power sample")
    coeffs = np.polyfit(alphas, powers, order)
    return PowerCurve(coefficients=tuple(float(c) for c in coeffs),
                      sample_alphas=alphas, sample_powers=powers, label=label)
