"""The 8-way workload taxonomy of Section 2.

Categories are the cross-product of three execution characteristics:

1. memory-bound or compute-bound,
2. short or long execution on the CPU alone,
3. short or long execution on the GPU alone.

One power characterization function is computed per category; online
classification maps a running workload to a category and thereby to
its curve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Boundedness(enum.Enum):
    COMPUTE = "compute"
    MEMORY = "memory"

    @property
    def short_code(self) -> str:
        return "C" if self is Boundedness.COMPUTE else "M"


class DeviceDuration(enum.Enum):
    SHORT = "short"
    LONG = "long"

    @property
    def short_code(self) -> str:
        return "S" if self is DeviceDuration.SHORT else "L"


@dataclass(frozen=True)
class WorkloadCategory:
    """One cell of the 2x2x2 taxonomy."""

    boundedness: Boundedness
    cpu_duration: DeviceDuration
    gpu_duration: DeviceDuration

    def __str__(self) -> str:
        return (f"{self.boundedness.value}"
                f"/cpu-{self.cpu_duration.value}"
                f"/gpu-{self.gpu_duration.value}")

    @property
    def short_code(self) -> str:
        """Compact form, e.g. ``M-SL`` = memory, CPU short, GPU long."""
        return (f"{self.boundedness.short_code}-"
                f"{self.cpu_duration.short_code}"
                f"{self.gpu_duration.short_code}")


def all_categories() -> Tuple[WorkloadCategory, ...]:
    """The eight categories, in a stable presentation order."""
    cats = []
    for bound in (Boundedness.COMPUTE, Boundedness.MEMORY):
        for cpu in (DeviceDuration.SHORT, DeviceDuration.LONG):
            for gpu in (DeviceDuration.SHORT, DeviceDuration.LONG):
                cats.append(WorkloadCategory(bound, cpu, gpu))
    return tuple(cats)


def category_from_codes(code: str) -> WorkloadCategory:
    """Parse a compact code like ``M-SL`` back into a category."""
    bound_code, rest = code.split("-")
    bound = Boundedness.MEMORY if bound_code == "M" else Boundedness.COMPUTE
    cpu = DeviceDuration.SHORT if rest[0] == "S" else DeviceDuration.LONG
    gpu = DeviceDuration.SHORT if rest[1] == "S" else DeviceDuration.LONG
    return WorkloadCategory(bound, cpu, gpu)
