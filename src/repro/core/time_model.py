"""The execution-time model of Section 3.2 (Eqs. 1-4).

Given profiled throughputs R_C (combined CPU workers) and R_G (GPU,
including offload overhead) and N remaining iterations, the model
predicts total execution time as a function of the GPU offload ratio
alpha in [0, 1]:

* both devices co-execute until one runs out of assigned work
  (Eq. 1: ``T_CG = min((1-a)N/R_C, aN/R_G)``);
* the ratio at which they finish together is the performance-optimal
  split (Eq. 2: ``alpha_PERF = R_G / (R_C + R_G)``);
* whatever is left runs on the surviving device (Eqs. 3-4).

This is the T(alpha) the scheduler multiplies with the characterized
P(alpha) to evaluate an energy objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError


@dataclass(frozen=True)
class ExecutionTimeModel:
    """T(alpha) for one kernel remainder of ``n_items`` iterations."""

    cpu_throughput: float  # R_C, items/s
    gpu_throughput: float  # R_G, items/s
    n_items: float         # N

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise SchedulingError("n_items must be non-negative")
        if self.cpu_throughput < 0 or self.gpu_throughput < 0:
            raise SchedulingError("throughputs must be non-negative")
        if self.cpu_throughput == 0 and self.gpu_throughput == 0:
            raise SchedulingError("at least one device must make progress")

    @property
    def alpha_perf(self) -> float:
        """Eq. 2: the performance-optimal GPU offload ratio."""
        total = self.cpu_throughput + self.gpu_throughput
        return self.gpu_throughput / total

    def combined_time(self, alpha: float) -> float:
        """Eq. 1: time both devices spend co-executing."""
        self._check_alpha(alpha)
        cpu_share = (1.0 - alpha) * self.n_items
        gpu_share = alpha * self.n_items
        cpu_t = self._device_time(cpu_share, self.cpu_throughput)
        gpu_t = self._device_time(gpu_share, self.gpu_throughput)
        return min(cpu_t, gpu_t)

    def remaining_items(self, alpha: float) -> float:
        """Eq. 3: items left for the surviving device after co-execution."""
        t_cg = self.combined_time(alpha)
        if t_cg == float("inf"):
            return 0.0
        processed = t_cg * (self.cpu_throughput + self.gpu_throughput)
        return max(0.0, self.n_items - processed)

    def total_time(self, alpha: float) -> float:
        """Eq. 4: total time to process all N iterations at ``alpha``."""
        self._check_alpha(alpha)
        # Exact endpoints are single-device executions; routing them
        # through the combined-mode arithmetic would mis-handle a
        # zero-throughput peer (alpha == alpha_perf tie at 0 or 1).
        if alpha <= 0.0:
            return self._device_time(self.n_items, self.cpu_throughput)
        if alpha >= 1.0:
            return self._device_time(self.n_items, self.gpu_throughput)
        t_cg = self.combined_time(alpha)
        n_rem = self.remaining_items(alpha)
        if n_rem <= 0:
            return t_cg
        if alpha > self.alpha_perf:
            # CPU ran out first; the GPU finishes the remainder.
            return t_cg + self._device_time(n_rem, self.gpu_throughput)
        if alpha < self.alpha_perf:
            return t_cg + self._device_time(n_rem, self.cpu_throughput)
        # Exactly at alpha_perf, n_rem is floating-point dust: either
        # device absorbs it; take the cheaper reading.
        return t_cg + min(self._device_time(n_rem, self.gpu_throughput),
                          self._device_time(n_rem, self.cpu_throughput))

    def __call__(self, alpha: float) -> float:
        return self.total_time(alpha)

    @staticmethod
    def _device_time(items: float, throughput: float) -> float:
        if items <= 0:
            return 0.0
        if throughput <= 0:
            return float("inf")
        return items / throughput

    @staticmethod
    def _check_alpha(alpha: float) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise SchedulingError(f"alpha {alpha} outside [0, 1]")
