"""One-time platform power characterization (Section 2).

For each of the eight workload categories, a micro-benchmark is swept
across GPU offload ratios; at each ratio the average package power is
measured through the energy MSR (energy delta / time delta, exactly the
hardware protocol) and a sixth-order polynomial is fitted to the sweep.
The result - a :class:`PlatformCharacterization` mapping category to
:class:`~repro.core.power_curve.PowerCurve` - is computed **once per
processor** and reused by every subsequent scheduling decision, so it
is JSON-serializable for caching.

The characterizer is black-box: it only uses the simulated SoC's
software-visible interfaces (run work, read clock, read MSR).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.categories import WorkloadCategory, all_categories, category_from_codes
from repro.core.power_curve import DEFAULT_ORDER, PowerCurve, fit_power_curve
from repro.errors import CharacterizationError
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.work import CostProfile, WorkRegion, split_for_offload

#: Default sweep step; the paper's Figs. 5-6 show dense sweeps and a
#: sixth-order fit needs at least 7 points.
DEFAULT_SWEEP_STEP = 0.05

#: Items used for the tiny single-device probe that calibrates N.
_PROBE_ITEMS = 50_000.0


@dataclass(frozen=True)
class CharacterizationMicrobench:
    """One of the eight probing micro-benchmarks.

    ``cpu_target_s`` is the intended CPU-alone duration; the
    characterizer calibrates the iteration count to hit it.  The GPU
    duration then follows from the cost model's device bias, which is
    what distinguishes e.g. (CPU short, GPU long) - the CPU-biased
    cell - from the balanced cells.
    """

    category: WorkloadCategory
    cost: KernelCostModel
    cpu_target_s: float
    #: Back-to-back executions per measurement.  Short-category probes
    #: are measured over several repeated launches because that is how
    #: short kernels occur in practice (one launch per BFS frontier,
    #: per frame, per batch); a single cold run would bake the PCU's
    #: one-off activation transient into the whole curve.
    repetitions: int = 1


@dataclass
class PlatformCharacterization:
    """Category -> power curve table for one processor."""

    platform_name: str
    curves: Dict[WorkloadCategory, PowerCurve] = field(default_factory=dict)

    def curve_for(self, category: WorkloadCategory) -> PowerCurve:
        try:
            return self.curves[category]
        except KeyError:
            raise CharacterizationError(
                f"platform {self.platform_name!r} has no curve for "
                f"category {category}") from None

    @property
    def is_complete(self) -> bool:
        return all(c in self.curves for c in all_categories())

    # -- caching ----------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "platform": self.platform_name,
            "curves": {
                cat.short_code: {
                    "coefficients": list(curve.coefficients),
                    "sample_alphas": list(curve.sample_alphas),
                    "sample_powers": list(curve.sample_powers),
                    "label": curve.label,
                }
                for cat, curve in self.curves.items()
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PlatformCharacterization":
        payload = json.loads(text)
        curves = {}
        for code, data in payload["curves"].items():
            curves[category_from_codes(code)] = PowerCurve(
                coefficients=tuple(data["coefficients"]),
                sample_alphas=tuple(data["sample_alphas"]),
                sample_powers=tuple(data["sample_powers"]),
                label=data.get("label", ""),
            )
        return cls(platform_name=payload["platform"], curves=curves)


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a characterization sweep."""

    alpha: float
    power_w: float
    time_s: float


class PowerCharacterizer:
    """Runs the eight-microbenchmark power characterization."""

    def __init__(self,
                 processor_factory: Optional[
                     Callable[[], IntegratedProcessor]] = None,
                 microbenches: Sequence[CharacterizationMicrobench] = (),
                 sweep_step: float = DEFAULT_SWEEP_STEP,
                 fit_order: int = DEFAULT_ORDER,
                 spec=None) -> None:
        """``spec`` (a :class:`~repro.soc.spec.PlatformSpec`) is the
        declarative alternative to ``processor_factory``: it makes the
        characterizer picklable and lets :meth:`characterize` fan its
        per-category sweeps out through an execution engine.  Exactly
        the factory ``lambda: IntegratedProcessor(spec)`` is implied.
        """
        if not microbenches:
            raise CharacterizationError("no micro-benchmarks supplied")
        seen = set()
        for mb in microbenches:
            if mb.category in seen:
                raise CharacterizationError(
                    f"duplicate micro-benchmark for category {mb.category}")
            seen.add(mb.category)
        if processor_factory is None:
            if spec is None:
                raise CharacterizationError(
                    "need a processor_factory or a platform spec")
            # Characterization is calibration: Table G must come out
            # identical whatever clock mode the experiments then run
            # under, so sweeps are pinned to the exact tick loop.
            # (Callers supplying a processor_factory keep full control.)
            spec = replace(spec, tick_mode="exact")
            processor_factory = lambda: IntegratedProcessor(spec)  # noqa: E731
        self.processor_factory = processor_factory
        self.spec = spec
        self.microbenches = list(microbenches)
        self.sweep_step = sweep_step
        self.fit_order = fit_order

    # -- public API ---------------------------------------------------------------

    def characterize(self, engine=None) -> PlatformCharacterization:
        """Run every sweep and fit every curve.

        With an :class:`~repro.harness.engine.ExecutionEngine` *and* a
        declarative ``spec``, the per-category alpha sweeps fan out
        through the engine (parallel and/or memoized); the polynomial
        fits always happen here, in the calling process.  Sweeps are
        measurements and measurements are deterministic, so both paths
        produce bit-identical curves.
        """
        spec_name = (self.spec.name if self.spec is not None
                     else self.processor_factory().spec.name)
        result = PlatformCharacterization(platform_name=spec_name)
        per_bench = self._sweep_all(engine)
        for bench, points in zip(self.microbenches, per_bench):
            curve = fit_power_curve(
                [p.alpha for p in points],
                [p.power_w for p in points],
                order=self.fit_order,
                label=bench.category.short_code)
            result.curves[bench.category] = curve
        return result

    def _sweep_all(self, engine) -> List[List[SweepPoint]]:
        """All sweeps, through the engine when it would help."""
        useful = engine is not None and (
            engine.jobs > 1 or engine.cache is not None)
        if self.spec is None or not useful:
            return [self.sweep(bench) for bench in self.microbenches]
        from repro.harness.engine import KIND_CHAR_SWEEP, RunSpec

        specs = [RunSpec(platform=self.spec, kind=KIND_CHAR_SWEEP,
                         workload=bench.category.short_code,
                         sweep_step=self.sweep_step, microbench=bench)
                 for bench in self.microbenches]
        return [result.payload for result in engine.run_batch(specs)]

    def sweep(self, bench: CharacterizationMicrobench) -> List[SweepPoint]:
        """Measure average package power across the alpha grid."""
        n_items = self._calibrate_items(bench)
        alphas = self._sweep_alphas()
        return [self._measure(bench.cost, n_items, alpha,
                              repetitions=bench.repetitions)
                for alpha in alphas]

    # -- internals ---------------------------------------------------------------

    def _sweep_alphas(self) -> List[float]:
        n = int(round(1.0 / self.sweep_step))
        return [min(1.0, i * self.sweep_step) for i in range(n + 1)]

    def _calibrate_items(self, bench: CharacterizationMicrobench) -> float:
        """Scale the iteration count to hit the CPU-alone time target."""
        probe_time = self._measure(bench.cost, _PROBE_ITEMS, 0.0).time_s
        if probe_time <= 0:
            raise CharacterizationError(
                f"probe run of {bench.category} took no time")
        return max(_PROBE_ITEMS * bench.cpu_target_s / probe_time, 1000.0)

    def _measure(self, cost: KernelCostModel, n_items: float, alpha: float,
                 repetitions: int = 1) -> SweepPoint:
        """Run the micro-benchmark at ``alpha`` on a fresh processor.

        ``repetitions`` back-to-back executions are measured as one
        window (see :class:`CharacterizationMicrobench.repetitions`).
        """
        processor = self.processor_factory()
        profile = CostProfile(cost)
        t0 = processor.now
        msr0 = processor.read_energy_msr()
        for _ in range(max(1, repetitions)):
            if alpha <= 0.0:
                region = WorkRegion.for_span(profile, n_items, 0.0, n_items)
                request = PhaseRequest(cost=cost, cpu_region=region,
                                       gpu_region=None)
            elif alpha >= 1.0:
                region = WorkRegion.for_span(profile, n_items, 0.0, n_items)
                request = PhaseRequest(cost=cost, cpu_region=None,
                                       gpu_region=region)
            else:
                gpu_region, cpu_region = split_for_offload(
                    profile, n_items, 0.0, n_items, alpha)
                request = PhaseRequest(cost=cost, cpu_region=cpu_region,
                                       gpu_region=gpu_region)
            processor.run_phase(request)
        msr1 = processor.read_energy_msr()
        elapsed = processor.now - t0
        if elapsed <= 0:
            raise CharacterizationError("measurement window has zero length")
        energy = processor.energy_joules_between(msr0, msr1)
        return SweepPoint(alpha=alpha, power_w=energy / elapsed,
                          time_s=elapsed / max(1, repetitions))
