"""Characterization quality validation.

When the black-box pipeline meets a *new* processor (the paper's SKU
variability story), the one-time characterization is the only platform
knowledge the scheduler will ever have - a silently bad fit poisons
every subsequent decision.  :func:`validate_characterization` performs
the sanity checks a deployment should run before caching the curve
table:

* completeness (all eight categories fitted);
* physical plausibility (positive power across the sweep, within a
  sane multiple of the platform's package cap);
* fit quality (residual RMS within a fraction of the curve's range);
* sweep adequacy (enough points for the polynomial order).

Findings come back as structured :class:`ValidationIssue`s rather than
exceptions, so callers can decide what is fatal; ``strict=True``
raises on any error-severity issue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.categories import all_categories
from repro.core.characterization import PlatformCharacterization
from repro.errors import CharacterizationError
from repro.soc.spec import PlatformSpec


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding about a characterization's quality."""

    severity: Severity
    category_code: Optional[str]
    message: str

    def __str__(self) -> str:
        where = f"[{self.category_code}] " if self.category_code else ""
        return f"{self.severity.value}: {where}{self.message}"


def validate_characterization(
        characterization: PlatformCharacterization,
        spec: Optional[PlatformSpec] = None,
        max_relative_rms: float = 0.15,
        strict: bool = False) -> List[ValidationIssue]:
    """Check a curve table before trusting it for scheduling.

    ``spec`` enables the power-plausibility checks (they need the
    package cap); without it only structural checks run.  Returns all
    issues found; raises :class:`CharacterizationError` under
    ``strict=True`` if any has error severity.
    """
    issues: List[ValidationIssue] = []

    for category in all_categories():
        code = category.short_code
        curve = characterization.curves.get(category)
        if curve is None:
            issues.append(ValidationIssue(
                Severity.ERROR, code, "no curve fitted for this category"))
            continue

        grid = np.linspace(0.0, 1.0, 21)
        powers = np.array([curve.power(a) for a in grid])

        if (powers <= 0.01).any():
            issues.append(ValidationIssue(
                Severity.ERROR, code,
                "fitted power collapses to the floor inside the sweep"))
        if spec is not None:
            cap = spec.pcu.package_cap_w
            if powers.max() > 2.0 * cap:
                issues.append(ValidationIssue(
                    Severity.ERROR, code,
                    f"fitted power peaks at {powers.max():.1f} W, above "
                    f"2x the package cap ({cap:.1f} W)"))
            if powers.min() < 0.5 * spec.idle_power_w:
                issues.append(ValidationIssue(
                    Severity.WARNING, code,
                    f"fitted power dips to {powers.min():.2f} W, below "
                    f"half the idle floor"))

        if not curve.sample_alphas:
            issues.append(ValidationIssue(
                Severity.WARNING, code,
                "curve carries no sweep samples; fit quality unknown"))
            continue
        if len(curve.sample_alphas) < curve.order + 1:
            issues.append(ValidationIssue(
                Severity.ERROR, code,
                f"{len(curve.sample_alphas)} sweep points cannot "
                f"constrain an order-{curve.order} fit"))
            continue
        spread = max(curve.sample_powers) - min(curve.sample_powers)
        scale = max(spread, 0.05 * max(curve.sample_powers))
        rms = curve.fit_residual_rms()
        if rms > max_relative_rms * scale:
            issues.append(ValidationIssue(
                Severity.WARNING, code,
                f"fit RMS {rms:.2f} W exceeds {max_relative_rms:.0%} of "
                f"the sweep's range ({scale:.2f} W)"))

    if strict and any(i.severity is Severity.ERROR for i in issues):
        details = "; ".join(str(i) for i in issues
                            if i.severity is Severity.ERROR)
        raise CharacterizationError(
            f"characterization for {characterization.platform_name!r} "
            f"failed validation: {details}")
    return issues
