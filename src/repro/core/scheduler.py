"""The energy-aware scheduler (EAS) - Fig. 7 of the paper.

Per kernel invocation:

1. If the GPU is busy with other work (performance counter A26),
   execute entirely on the CPU (Section 5).  The check is debounced:
   a transiently flapping counter must not needlessly forfeit the GPU.
2. If table G already holds an alpha for this kernel, reuse it for all
   N iterations (lines 2-4).
3. If N is below GPU_PROFILE_SIZE, run CPU-alone and record alpha=0
   (lines 6-10).
4. Otherwise repeat online profiling until half of the iterations are
   consumed (lines 13-22), following the *size-based* strategy of
   reference [12]: each round offloads a doubling GPU chunk while CPU
   workers drain the shared pool.  Each round re-derives R_C and R_G,
   classifies the workload (memory/compute x CPU-short/long x
   GPU-short/long), selects the platform's power curve for that
   category, and grid-searches alpha minimizing
   OBJ(P(alpha), T(alpha)).
5. Offload ``alpha * N_rem`` to the GPU and run ``(1-alpha) * N_rem``
   on the CPU with work stealing (lines 23-25), then accumulate alpha
   into G sample-weighted (line 26).

The scheduler's own decision cost (the alpha grid search) is measured
with the host's performance clock; the paper reports 1-2 microseconds
per invocation and our benchmark harness tracks the same quantity.

**Resilience** (see docs/ROBUSTNESS.md): every GPU interaction may
raise :class:`~repro.errors.GpuFaultError` on a faulty platform.
Failed profiling chunks are retried with bounded backoff; a per-kernel
fault budget triggers graceful degradation to CPU-only execution
(sticky, recorded as ``notes=["gpu-faulted-fallback"]``);
:meth:`EnergyAwareScheduler._derive_alpha` rejects NaN/zero/absurd
throughput readings and falls back to the last-known-good table-G
alpha; alphas derived under observed faults are quarantined in table G
so one bad profile cannot poison future invocations; and a watchdog
caps the number of profiling rounds per invocation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.characterization import PlatformCharacterization
from repro.core.classification import ClassificationInputs, OnlineClassifier
from repro.core.metrics import EnergyMetric
from repro.core.optimizer import DEFAULT_ALPHA_STEP, AlphaOptimizer
from repro.core.profiling import KernelTable, ProfileAggregate
from repro.core.time_model import ExecutionTimeModel
from repro.errors import GpuFaultError
from repro.runtime.runtime import KernelLaunch, ProfileObservation, SchedulerRecord

#: Throughputs above this (items/s) are treated as sensor garbage.
MAX_SANE_THROUGHPUT = 1e15

#: Note recorded whenever the scheduler degrades to CPU-only because
#: of GPU faults (per-kernel fault budget exhausted, or a faulted
#: partitioned phase drained on the CPU).
GPU_FAULTED_FALLBACK = "gpu-faulted-fallback"


@dataclass
class EasConfig:
    """Tunables of the EAS algorithm (ablation knobs)."""

    #: Grid increment for the alpha search (the paper uses 0.1).
    alpha_step: float = DEFAULT_ALPHA_STEP
    #: Stop profiling once this fraction of N has been consumed.
    profile_fraction: float = 0.5
    #: Grow the GPU profiling chunk by this factor each round
    #: (size-based strategy of [12]).
    chunk_growth: float = 2.0
    #: Stop profiling early once successive alpha estimates agree
    #: within this tolerance (after at least two rounds).  Keeps the
    #: paper's "near-zero overhead" property: profiling up to half the
    #: iterations is the worst case, not the common case.
    convergence_tolerance: float = 0.05
    #: Re-derive alpha by profiling again on every invocation instead
    #: of reusing table G (ablation; the paper reuses G).
    always_reprofile: bool = False
    #: Re-profile when an invocation is this many times larger than
    #: the invocation its table-G alpha was derived from (the paper
    #: repeats profiling "for workloads where the same kernel behaves
    #: differently over time"); the new alpha is accumulated
    #: sample-weighted, per Fig. 7 line 26.
    reprofile_growth: float = 4.0
    #: Override the platform's GPU_PROFILE_SIZE (None = use spec).
    gpu_profile_size: Optional[int] = None

    # -- resilience knobs (docs/ROBUSTNESS.md) -----------------------------------

    #: Retries for one failed GPU profiling chunk (0 = no retry).
    max_profile_retries: int = 2
    #: Simulated idle backoff before a retry; grows linearly with the
    #: attempt number.  Defaults to 0 (immediate retry): on an
    #: integrated part an idle backoff drops the package into its
    #: low-power state, and the post-idle DVFS ramp costs far more than
    #: the backoff buys.  Raise it on platforms whose transients need
    #: settle time.
    retry_backoff_s: float = 0.0
    #: After any observed GPU fault, route *new* invocations of that
    #: kernel to the CPU for this long (a circuit-breaker half-open
    #: window).  Defaults to 0 (disabled): on the integrated platform a
    #: cooldown makes many-tiny-invocation workloads alternate between
    #: GPU and CPU execution, and every alternation pays the package's
    #: post-idle DVFS ramp tax - measured campaigns show the cooldown
    #: *raising* EDP under faults.  The knob remains for discrete-GPU
    #: style platforms where backing off a flaky device is cheap.
    fault_cooldown_s: float = 0.0
    #: Per-kernel GPU-fault budget with leaky-bucket semantics: every
    #: observed fault fills the bucket by one, every successful GPU
    #: operation drains it by one.  When the bucket reaches this level
    #: the kernel degrades to CPU-only execution for the rest of the
    #: run (sticky).  Transient faults on a mostly-healthy GPU never
    #: exhaust it; a dead GPU exhausts it after ~budget consecutive
    #: failures, bounding the total time wasted on a lost cause.
    fault_budget: int = 8
    #: Watchdog cap on profiling rounds per invocation - a faulty
    #: platform must not trap the scheduler in an endless profile loop.
    max_profile_rounds: int = 12
    #: Re-reads of a busy ``gpu_busy`` counter before trusting it
    #: (debounce against transient flapping; 0 = trust the first read).
    gpu_busy_rechecks: int = 1
    #: Idle pause between ``gpu_busy`` re-reads.  An immediate re-read
    #: (0.0, the default) already filters a transient flap; a positive
    #: pause trades simulated time for robustness to longer glitches.
    gpu_busy_recheck_idle_s: float = 0.0


@dataclass
class EasDecision:
    """Diagnostics for one scheduled invocation."""

    alpha: float
    category_code: Optional[str]
    from_table: bool
    profile_rounds: int
    cpu_throughput: Optional[float] = None
    gpu_throughput: Optional[float] = None
    #: Host-side cost of the scheduling computation itself, seconds.
    decision_overhead_s: float = 0.0
    #: GPU faults the scheduler observed while serving this invocation.
    faults_observed: int = 0


class EnergyAwareScheduler:
    """EAS: black-box energy-aware CPU-GPU work partitioning."""

    def __init__(self, characterization: PlatformCharacterization,
                 metric: EnergyMetric,
                 classifier: Optional[OnlineClassifier] = None,
                 config: Optional[EasConfig] = None) -> None:
        self.characterization = characterization
        self.metric = metric
        self.classifier = classifier or OnlineClassifier()
        self.config = config or EasConfig()
        self.table = KernelTable()
        self.optimizer = AlphaOptimizer(metric=metric, step=self.config.alpha_step)
        self.decisions: list = []
        #: Leaky-bucket fault level per kernel key (faults fill,
        #: successes drain; degradation triggers at the budget).
        self.fault_counts: Dict[str, int] = {}
        #: Lifetime GPU-fault totals per kernel key (diagnostics only).
        self.fault_totals: Dict[str, int] = {}
        #: Kernels whose fault budget is exhausted: CPU-only from now on.
        self.degraded_kernels: Set[str] = set()
        #: Per-kernel circuit-breaker: simulated time before which new
        #: invocations stay on the CPU after an observed GPU fault.
        self.gpu_retry_after: Dict[str, float] = {}

    # -- SchedulerProtocol ---------------------------------------------------------

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        key = launch.kernel.key
        self.table.note_invocation(key)

        # GPU busy with other work: CPU-alone fallback (Section 5),
        # debounced against transient counter flapping.
        if self._gpu_busy_debounced(launch):
            launch.run_cpu_only()
            return SchedulerRecord(alpha=0.0, notes=["gpu-busy-fallback"])

        # Fault budget exhausted earlier: the GPU is not to be trusted
        # for this kernel any more.  Graceful degradation, not a crash.
        # A kernel still inside its post-fault cooldown window gets the
        # same CPU-only treatment, but only until the window closes.
        if (key in self.degraded_kernels
                or launch.processor.now < self.gpu_retry_after.get(key, 0.0)):
            launch.run_cpu_only()
            self._record_decision(alpha=0.0, category=None, from_table=True,
                                  rounds=0)
            return SchedulerRecord(alpha=0.0, notes=[GPU_FAULTED_FALLBACK])

        profile_size = (self.config.gpu_profile_size
                        or launch.processor.spec.gpu_profile_size)

        # Lines 2-4: reuse alpha from table G.  Provisional entries
        # (small-N fast path) are only reused for further small
        # launches; a launch big enough to profile supersedes them, as
        # does one far larger than the entry was derived from.
        # Quarantined entries (derived under faults) are never reused.
        entry = self.table.lookup(key)
        if entry is not None and entry.quarantined:
            entry = None
        if entry is not None and launch.n_items >= profile_size:
            outgrown = launch.n_items > (self.config.reprofile_growth
                                         * max(entry.derived_at_items, 1.0))
            if entry.provisional or outgrown:
                entry = None
        if entry is not None and not self.config.always_reprofile:
            record = self._run_remainder(launch, key, entry.alpha)
            self._record_decision(alpha=record.alpha,
                                  category=entry.category,
                                  from_table=True, rounds=0)
            record.profiled = False
            return record

        # Lines 6-10: too little parallelism for the GPU at all.
        if launch.n_items < profile_size:
            launch.run_cpu_only()
            self.table.record(key, alpha=0.0, weight=launch.n_items,
                              provisional=True)
            self._record_decision(alpha=0.0, category=None, from_table=False,
                                  rounds=0)
            return SchedulerRecord(alpha=0.0, profiled=False,
                                   notes=["small-n-cpu-only"])

        # Lines 13-22: repeated profiling for half of the iterations,
        # capped by the round watchdog on hostile platforms.
        aggregate = ProfileAggregate()
        profiling_time = 0.0
        chunk = float(profile_size)
        alpha: Optional[float] = None
        category = None
        sanity_note: Optional[str] = None
        faulted = False
        decision_overhead = 0.0
        keep_profiling_above = launch.n_items * (1.0 - self.config.profile_fraction)
        while (launch.remaining_items > keep_profiling_above
               and aggregate.num_rounds < self.config.max_profile_rounds):
            # Never hand the GPU more than half the remainder: a
            # profiling round must leave work for the partitioned run.
            chunk_now = min(chunk, launch.remaining_items * 0.5)
            if chunk_now < 64.0:
                break
            observation, had_fault = self._profile_with_retry(launch, key,
                                                              chunk_now)
            faulted = faulted or had_fault
            if observation is None:
                if key in self.degraded_kernels:
                    # Fault budget exhausted: the GPU really is gone.
                    return self._degrade(launch, key, aggregate,
                                         profiling_time)
                # Retries exhausted but budget remains: keep trying -
                # each failure fills the leaky bucket, so this persists
                # for at most ~budget attempts before degrading.
                continue
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            prev_alpha = alpha
            alpha, category, sanity_note = self._derive_alpha(
                aggregate, launch.remaining_items, launch.n_items, key)
            decision_overhead += time.perf_counter() - t_host
            chunk *= self.config.chunk_growth
            if (prev_alpha is not None
                    and abs(alpha - prev_alpha) <= self.config.convergence_tolerance):
                break

        while alpha is None:
            # No successful profiling round yet - either the while loop
            # never ran (e.g. N barely above the profile size, or a
            # pathological profile fraction) or every round faulted
            # without exhausting the budget.  Take a minimal round,
            # persisting until it succeeds or the budget is gone.
            # Clamp the chunk to the 64-item floor used in the main
            # loop so a tiny remainder cannot trip profile_chunk's
            # positivity check.
            chunk_now = max(64.0, min(chunk, launch.remaining_items * 0.5))
            observation, had_fault = self._profile_with_retry(launch, key,
                                                              chunk_now)
            faulted = faulted or had_fault
            if observation is None:
                if key in self.degraded_kernels:
                    return self._degrade(launch, key, aggregate,
                                         profiling_time)
                continue
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            alpha, category, sanity_note = self._derive_alpha(
                aggregate, launch.remaining_items, launch.n_items, key)
            decision_overhead += time.perf_counter() - t_host

        faulted = faulted or sanity_note is not None

        # Lines 23-25: partitioned execution of the remainder.
        record = self._run_remainder(launch, key, alpha)
        fell_back = GPU_FAULTED_FALLBACK in record.notes
        faulted = faulted or fell_back

        # Line 26: sample-weighted accumulation into G.  An alpha
        # derived while faults were observed is quarantined: recorded
        # for diagnostics, never reused, never diluting a clean entry.
        self.table.record(key, alpha=alpha, weight=launch.n_items,
                          category=category, quarantined=faulted)
        self._record_decision(
            alpha=record.alpha, category=category, from_table=False,
            rounds=aggregate.num_rounds,
            cpu_throughput=aggregate.cpu_throughput,
            gpu_throughput=aggregate.gpu_throughput,
            decision_overhead=decision_overhead,
            faults=self.fault_totals.get(key, 0))
        record.profiled = True
        record.profile_rounds = aggregate.num_rounds
        record.profiling_time_s = profiling_time
        if category is not None:
            record.notes.insert(0, f"category={category.short_code}")
        if sanity_note is not None:
            record.notes.append(sanity_note)
        return record

    # -- resilience internals ------------------------------------------------------

    def _gpu_busy_debounced(self, launch: KernelLaunch) -> bool:
        """A26 check that a transiently flapping counter cannot spoof.

        A clean read costs nothing; only a busy reading triggers the
        (cheap) re-check loop.
        """
        if not launch.processor.gpu_busy:
            return False
        for _ in range(max(0, self.config.gpu_busy_rechecks)):
            if self.config.gpu_busy_recheck_idle_s > 0.0:
                launch.processor.idle(self.config.gpu_busy_recheck_idle_s)
            if not launch.processor.gpu_busy:
                return False
        return True

    def _register_fault(self, launch: KernelLaunch, key: str) -> bool:
        """Fill the kernel's fault bucket; True when the budget is gone.

        Every fault also arms the circuit-breaker cooldown: new
        invocations of this kernel stay CPU-only until it expires.
        """
        count = self.fault_counts.get(key, 0) + 1
        self.fault_counts[key] = count
        self.fault_totals[key] = self.fault_totals.get(key, 0) + 1
        self.gpu_retry_after[key] = (launch.processor.now
                                     + self.config.fault_cooldown_s)
        if count >= self.config.fault_budget:
            self.degraded_kernels.add(key)
            return True
        return False

    def _register_success(self, key: str) -> None:
        """A successful GPU operation drains the leaky fault bucket."""
        count = self.fault_counts.get(key, 0)
        if count > 0:
            self.fault_counts[key] = count - 1

    def _profile_with_retry(
            self, launch: KernelLaunch, key: str, chunk: float,
    ) -> "Tuple[Optional[ProfileObservation], bool]":
        """One profiling round with bounded retry-with-backoff.

        An observation in which the GPU made *zero progress* on a
        nonzero chunk is itself a fault manifestation (a hung or lying
        device): it is discarded and retried, never averaged into the
        throughput estimates.  Returns ``(observation, had_fault)``;
        observation is None when the retries (or the kernel's whole
        fault budget) are exhausted and the caller must degrade to
        CPU-only execution.
        """
        had_fault = False
        attempts = max(0, self.config.max_profile_retries) + 1
        for attempt in range(attempts):
            try:
                observation = launch.profile_chunk(chunk)
            except GpuFaultError:
                observation = None
            if observation is not None and observation.gpu_items > 0.0:
                self._register_success(key)
                return observation, had_fault
            had_fault = True
            if self._register_fault(launch, key):
                return None, True
            self._backoff(launch, attempt)
        return None, True

    def _backoff(self, launch: KernelLaunch, attempt: int) -> None:
        backoff = self.config.retry_backoff_s * (attempt + 1)
        if backoff > 0.0:
            launch.processor.idle(backoff)

    def _run_remainder(self, launch: KernelLaunch, key: str,
                       alpha: float) -> SchedulerRecord:
        """Run everything still pooled at ``alpha``, surviving GPU faults.

        A faulted partitioned phase leaves its items pooled: the launch
        is retried until it succeeds or the kernel's fault budget runs
        out (a transient failure must not forfeit the GPU - and its
        characterized gains - for a whole remainder), after which the
        remainder is drained on the CPU and the invocation flagged, so
        the runtime's all-items-processed contract holds on any
        platform.
        """
        notes: List[str] = []
        if launch.remaining_items > 0 and alpha > 0.0:
            attempt = 0
            while True:
                try:
                    launch.run_partitioned(alpha)
                    self._register_success(key)
                    return SchedulerRecord(alpha=alpha, notes=notes)
                except GpuFaultError:
                    if self._register_fault(launch, key):
                        break
                    self._backoff(launch, attempt)
                    attempt += 1
            if not launch.is_done:
                launch.run_cpu_only()
            alpha = 0.0
            notes.append(GPU_FAULTED_FALLBACK)
        elif launch.remaining_items > 0:
            launch.run_partitioned(alpha)
        return SchedulerRecord(alpha=alpha, notes=notes)

    def _degrade(self, launch: KernelLaunch, key: str,
                 aggregate: ProfileAggregate,
                 profiling_time: float) -> SchedulerRecord:
        """Graceful degradation: drain the remainder on the CPU."""
        self.degraded_kernels.add(key)
        if not launch.is_done:
            launch.run_cpu_only()
        self._record_decision(alpha=0.0, category=None, from_table=False,
                              rounds=aggregate.num_rounds,
                              faults=self.fault_totals.get(key, 0))
        return SchedulerRecord(alpha=0.0, profiled=True,
                               profile_rounds=aggregate.num_rounds,
                               profiling_time_s=profiling_time,
                               notes=[GPU_FAULTED_FALLBACK])

    def _record_decision(self, alpha: float, category, from_table: bool,
                         rounds: int, cpu_throughput: Optional[float] = None,
                         gpu_throughput: Optional[float] = None,
                         decision_overhead: float = 0.0,
                         faults: int = 0) -> None:
        self.decisions.append(EasDecision(
            alpha=alpha,
            category_code=category.short_code if category else None,
            from_table=from_table,
            profile_rounds=rounds,
            cpu_throughput=cpu_throughput,
            gpu_throughput=gpu_throughput,
            decision_overhead_s=decision_overhead,
            faults_observed=faults))

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _sane_throughput(value: float) -> float:
        """Clamp a throughput reading to [0, sane); garbage becomes 0."""
        if not math.isfinite(value) or value < 0.0 or value >= MAX_SANE_THROUGHPUT:
            return 0.0
        return value

    def _derive_alpha(self, aggregate: ProfileAggregate,
                      remaining_items: float, total_items: float,
                      key: str) -> "Tuple[float, object, Optional[str]]":
        """Classify, select the power curve, and minimize the objective.

        T(alpha) is linear in N, so the argmin over alpha does not
        depend on the iteration count; when profiling happened to drain
        the pool (tiny invocations), a nominal fraction of the full
        invocation keeps the model non-degenerate instead of letting
        every objective tie at zero.

        Returns ``(alpha, category, sanity_note)``.  On insane inputs
        (NaN/zero/absurd throughputs - a faulty counter bank, a dud GPU
        launch) the sanity_note explains the fallback taken: the
        last-known-good table-G alpha when one exists, CPU-only
        otherwise.  This method never raises on bad measurements.
        """
        r_c = self._sane_throughput(aggregate.cpu_throughput)
        r_g = self._sane_throughput(aggregate.gpu_throughput)
        if r_c <= 0.0 and r_g <= 0.0:
            # Profiling observed no progress on either device: the
            # observations are unusable.  Fall back to the last-known-
            # good table entry, else to the CPU-only safe default.
            entry = self.table.lookup(key)
            if (entry is not None and not entry.provisional
                    and not entry.quarantined):
                return entry.alpha, entry.category, "alpha-from-last-good"
            return 0.0, None, "alpha-fallback-cpu-only"
        n_model = max(remaining_items, 0.25 * total_items, 1.0)
        inputs = ClassificationInputs(
            l3_misses=max(0.0, aggregate.l3_misses),
            loadstore_instructions=max(0.0, aggregate.loadstore_instructions),
            cpu_throughput=r_c,
            gpu_throughput=r_g,
            remaining_items=n_model)
        category = self.classifier.classify(inputs)
        curve = self.characterization.curve_for(category)
        model = ExecutionTimeModel(cpu_throughput=r_c, gpu_throughput=r_g,
                                   n_items=n_model)
        alpha, _ = self.optimizer.best_alpha(curve, model)
        return alpha, category, None
