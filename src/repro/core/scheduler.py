"""The energy-aware scheduler (EAS) - Fig. 7 of the paper.

Per kernel invocation:

1. If the GPU is busy with other work (performance counter A26),
   execute entirely on the CPU (Section 5).
2. If table G already holds an alpha for this kernel, reuse it for all
   N iterations (lines 2-4).
3. If N is below GPU_PROFILE_SIZE, run CPU-alone and record alpha=0
   (lines 6-10).
4. Otherwise repeat online profiling until half of the iterations are
   consumed (lines 13-22), following the *size-based* strategy of
   reference [12]: each round offloads a doubling GPU chunk while CPU
   workers drain the shared pool.  Each round re-derives R_C and R_G,
   classifies the workload (memory/compute x CPU-short/long x
   GPU-short/long), selects the platform's power curve for that
   category, and grid-searches alpha minimizing
   OBJ(P(alpha), T(alpha)).
5. Offload ``alpha * N_rem`` to the GPU and run ``(1-alpha) * N_rem``
   on the CPU with work stealing (lines 23-25), then accumulate alpha
   into G sample-weighted (line 26).

The scheduler's own decision cost (the alpha grid search) is measured
with the host's performance clock; the paper reports 1-2 microseconds
per invocation and our benchmark harness tracks the same quantity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.characterization import PlatformCharacterization
from repro.core.classification import ClassificationInputs, OnlineClassifier
from repro.core.metrics import EnergyMetric
from repro.core.optimizer import DEFAULT_ALPHA_STEP, AlphaOptimizer
from repro.core.profiling import KernelTable, ProfileAggregate
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError
from repro.runtime.runtime import KernelLaunch, SchedulerRecord


@dataclass
class EasConfig:
    """Tunables of the EAS algorithm (ablation knobs)."""

    #: Grid increment for the alpha search (the paper uses 0.1).
    alpha_step: float = DEFAULT_ALPHA_STEP
    #: Stop profiling once this fraction of N has been consumed.
    profile_fraction: float = 0.5
    #: Grow the GPU profiling chunk by this factor each round
    #: (size-based strategy of [12]).
    chunk_growth: float = 2.0
    #: Stop profiling early once successive alpha estimates agree
    #: within this tolerance (after at least two rounds).  Keeps the
    #: paper's "near-zero overhead" property: profiling up to half the
    #: iterations is the worst case, not the common case.
    convergence_tolerance: float = 0.05
    #: Re-derive alpha by profiling again on every invocation instead
    #: of reusing table G (ablation; the paper reuses G).
    always_reprofile: bool = False
    #: Re-profile when an invocation is this many times larger than
    #: the invocation its table-G alpha was derived from (the paper
    #: repeats profiling "for workloads where the same kernel behaves
    #: differently over time"); the new alpha is accumulated
    #: sample-weighted, per Fig. 7 line 26.
    reprofile_growth: float = 4.0
    #: Override the platform's GPU_PROFILE_SIZE (None = use spec).
    gpu_profile_size: Optional[int] = None


@dataclass
class EasDecision:
    """Diagnostics for one scheduled invocation."""

    alpha: float
    category_code: Optional[str]
    from_table: bool
    profile_rounds: int
    cpu_throughput: Optional[float] = None
    gpu_throughput: Optional[float] = None
    #: Host-side cost of the scheduling computation itself, seconds.
    decision_overhead_s: float = 0.0


class EnergyAwareScheduler:
    """EAS: black-box energy-aware CPU-GPU work partitioning."""

    def __init__(self, characterization: PlatformCharacterization,
                 metric: EnergyMetric,
                 classifier: Optional[OnlineClassifier] = None,
                 config: Optional[EasConfig] = None) -> None:
        self.characterization = characterization
        self.metric = metric
        self.classifier = classifier or OnlineClassifier()
        self.config = config or EasConfig()
        self.table = KernelTable()
        self.optimizer = AlphaOptimizer(metric=metric, step=self.config.alpha_step)
        self.decisions: list = []

    # -- SchedulerProtocol ---------------------------------------------------------

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        key = launch.kernel.key
        self.table.note_invocation(key)

        # GPU busy with other work: CPU-alone fallback (Section 5).
        if launch.processor.gpu_busy:
            launch.run_cpu_only()
            return SchedulerRecord(alpha=0.0, notes=["gpu-busy-fallback"])

        profile_size_early = (self.config.gpu_profile_size
                              or launch.processor.spec.gpu_profile_size)
        # Lines 2-4: reuse alpha from table G.  Provisional entries
        # (small-N fast path) are only reused for further small
        # launches; a launch big enough to profile supersedes them, as
        # does one far larger than the entry was derived from.
        entry = self.table.lookup(key)
        if entry is not None and launch.n_items >= profile_size_early:
            outgrown = launch.n_items > (self.config.reprofile_growth
                                         * max(entry.derived_at_items, 1.0))
            if entry.provisional or outgrown:
                entry = None
        if entry is not None and not self.config.always_reprofile:
            launch.run_partitioned(entry.alpha)
            self.decisions.append(EasDecision(
                alpha=entry.alpha,
                category_code=(entry.category.short_code
                               if entry.category else None),
                from_table=True, profile_rounds=0))
            return SchedulerRecord(alpha=entry.alpha, profiled=False)

        # Lines 6-10: too little parallelism for the GPU at all.
        profile_size = (self.config.gpu_profile_size
                        or launch.processor.spec.gpu_profile_size)
        if launch.n_items < profile_size:
            launch.run_cpu_only()
            self.table.record(key, alpha=0.0, weight=launch.n_items,
                              provisional=True)
            self.decisions.append(EasDecision(
                alpha=0.0, category_code=None, from_table=False,
                profile_rounds=0))
            return SchedulerRecord(alpha=0.0, profiled=False,
                                   notes=["small-n-cpu-only"])

        # Lines 13-22: repeated profiling for half of the iterations.
        aggregate = ProfileAggregate()
        profiling_time = 0.0
        chunk = float(profile_size)
        alpha = None
        category = None
        decision_overhead = 0.0
        keep_profiling_above = launch.n_items * (1.0 - self.config.profile_fraction)
        while launch.remaining_items > keep_profiling_above:
            # Never hand the GPU more than half the remainder: a
            # profiling round must leave work for the partitioned run.
            chunk_now = min(chunk, launch.remaining_items * 0.5)
            if chunk_now < 64.0:
                break
            observation = launch.profile_chunk(chunk_now)
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            prev_alpha = alpha
            alpha, category = self._derive_alpha(
                aggregate, launch.remaining_items, launch.n_items)
            decision_overhead += time.perf_counter() - t_host
            chunk *= self.config.chunk_growth
            if (prev_alpha is not None
                    and abs(alpha - prev_alpha) <= self.config.convergence_tolerance):
                break

        if alpha is None:
            # The while loop never ran (e.g. N barely above the profile
            # size): take a single minimal profiling round.
            observation = launch.profile_chunk(
                min(chunk, launch.remaining_items * 0.5))
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            alpha, category = self._derive_alpha(
                aggregate, launch.remaining_items, launch.n_items)
            decision_overhead += time.perf_counter() - t_host

        # Lines 23-25: partitioned execution of the remainder.
        if launch.remaining_items > 0:
            launch.run_partitioned(alpha)

        # Line 26: sample-weighted accumulation into G.
        self.table.record(key, alpha=alpha, weight=launch.n_items,
                          category=category)
        self.decisions.append(EasDecision(
            alpha=alpha,
            category_code=category.short_code if category else None,
            from_table=False,
            profile_rounds=aggregate.num_rounds,
            cpu_throughput=aggregate.cpu_throughput,
            gpu_throughput=aggregate.gpu_throughput,
            decision_overhead_s=decision_overhead))
        return SchedulerRecord(
            alpha=alpha, profiled=True,
            profile_rounds=aggregate.num_rounds,
            profiling_time_s=profiling_time,
            notes=[f"category={category.short_code}" if category else "?"])

    # -- internals ---------------------------------------------------------------

    def _derive_alpha(self, aggregate: ProfileAggregate,
                      remaining_items: float, total_items: float):
        """Classify, select the power curve, and minimize the objective.

        T(alpha) is linear in N, so the argmin over alpha does not
        depend on the iteration count; when profiling happened to drain
        the pool (tiny invocations), a nominal fraction of the full
        invocation keeps the model non-degenerate instead of letting
        every objective tie at zero.
        """
        r_c = aggregate.cpu_throughput
        r_g = aggregate.gpu_throughput
        if r_c <= 0 and r_g <= 0:
            raise SchedulingError("profiling observed no progress on either device")
        n_model = max(remaining_items, 0.25 * total_items, 1.0)
        inputs = ClassificationInputs(
            l3_misses=aggregate.l3_misses,
            loadstore_instructions=aggregate.loadstore_instructions,
            cpu_throughput=r_c,
            gpu_throughput=r_g,
            remaining_items=n_model)
        category = self.classifier.classify(inputs)
        curve = self.characterization.curve_for(category)
        model = ExecutionTimeModel(cpu_throughput=r_c, gpu_throughput=r_g,
                                   n_items=n_model)
        alpha, _ = self.optimizer.best_alpha(curve, model)
        return alpha, category
