"""The energy-aware scheduler (EAS) - Fig. 7 of the paper.

Per kernel invocation:

1. If the GPU is busy with other work (performance counter A26),
   execute entirely on the CPU (Section 5).  The check is debounced:
   a transiently flapping counter must not needlessly forfeit the GPU.
2. If table G already holds an alpha for this kernel, reuse it for all
   N iterations (lines 2-4).
3. If N is below GPU_PROFILE_SIZE, run CPU-alone and record alpha=0
   (lines 6-10).
4. Otherwise repeat online profiling until half of the iterations are
   consumed (lines 13-22), following the *size-based* strategy of
   reference [12]: each round offloads a doubling GPU chunk while CPU
   workers drain the shared pool.  Each round re-derives R_C and R_G,
   classifies the workload (memory/compute x CPU-short/long x
   GPU-short/long), selects the platform's power curve for that
   category, and grid-searches alpha minimizing
   OBJ(P(alpha), T(alpha)).
5. Offload ``alpha * N_rem`` to the GPU and run ``(1-alpha) * N_rem``
   on the CPU with work stealing (lines 23-25), then accumulate alpha
   into G sample-weighted (line 26).

The scheduler's own decision cost (the alpha grid search) is measured
with the host's performance clock; the paper reports 1-2 microseconds
per invocation and our benchmark harness tracks the same quantity.

**Resilience** (see docs/ROBUSTNESS.md): every GPU interaction may
raise :class:`~repro.errors.GpuFaultError` on a faulty platform.
Failed profiling chunks are retried with bounded backoff; a per-kernel
fault budget triggers graceful degradation to CPU-only execution
(sticky, recorded as ``notes=["gpu-faulted-fallback"]``);
:meth:`EnergyAwareScheduler._derive_alpha` rejects NaN/zero/absurd
throughput readings and falls back to the last-known-good table-G
alpha; alphas derived under observed faults are quarantined in table G
so one bad profile cannot poison future invocations; and a watchdog
caps the number of profiling rounds per invocation.

**Observability** (see docs/OBSERVABILITY.md): every invocation emits
one :class:`~repro.obs.records.DecisionRecord` - whatever exit path it
takes, including all degradation branches - into
:attr:`EnergyAwareScheduler.decisions` and, when an
:class:`~repro.obs.Observer` is attached, into the observer's decision
stream.  An attached observer additionally collects spans
(``eas.invocation``, ``eas.profiling_round``, ``eas.grid_search``) and
metrics (rounds, retries, faults, fault-bucket levels, grid-search
microseconds).  With no observer the scheduler pays one attribute load
per hook: the shared :data:`~repro.obs.NULL_OBSERVER` no-ops.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Set, Tuple

from repro.core.characterization import PlatformCharacterization
from repro.core.classification import ClassificationInputs, OnlineClassifier
from repro.core.metrics import ConstrainedMetric, EnergyMetric
from repro.core.optimizer import DEFAULT_ALPHA_STEP, AlphaOptimizer
from repro.core.profiling import KernelTable, ProfileAggregate
from repro.errors import GpuFaultError, SchedulingError
from repro.obs.observer import NULL_OBSERVER, Observer, resolve
from repro.obs.records import (
    EXIT_COOLDOWN,
    EXIT_DEADLINE_INFEASIBLE,
    EXIT_DEGRADED,
    EXIT_FAULT_DEGRADED,
    EXIT_GPU_BUSY,
    EXIT_PROFILED,
    EXIT_SMALL_N,
    EXIT_TABLE_HIT,
    DecisionRecord,
)
from repro.runtime.runtime import KernelLaunch, ProfileObservation, SchedulerRecord

#: Throughputs above this (items/s) are treated as sensor garbage.
MAX_SANE_THROUGHPUT = 1e15

#: Note recorded whenever the scheduler degrades to CPU-only because
#: of GPU faults (per-kernel fault budget exhausted, or a faulted
#: partitioned phase drained on the CPU).
GPU_FAULTED_FALLBACK = "gpu-faulted-fallback"


@dataclass
class SchedulerConfig:
    """Validated tunables of the EAS algorithm (ablation + resilience).

    This is the blessed configuration object (it superseded the PR-1
    ``EasConfig`` pile of loose knobs); invalid values raise
    :class:`~repro.errors.SchedulingError` at construction instead of
    misbehaving mid-run.
    """

    # -- profiling / optimization knobs -------------------------------------------

    #: Grid increment for the alpha search (the paper uses 0.1).
    alpha_step: float = DEFAULT_ALPHA_STEP
    #: Stop profiling once this fraction of N has been consumed.
    profile_fraction: float = 0.5
    #: Grow the GPU profiling chunk by this factor each round
    #: (size-based strategy of [12]).
    chunk_growth: float = 2.0
    #: Stop profiling early once successive alpha estimates agree
    #: within this tolerance (after at least two rounds).  Keeps the
    #: paper's "near-zero overhead" property: profiling up to half the
    #: iterations is the worst case, not the common case.  A negative
    #: tolerance disables convergence (ablation use).
    convergence_tolerance: float = 0.05
    #: Re-derive alpha by profiling again on every invocation instead
    #: of reusing table G (ablation; the paper reuses G).
    always_reprofile: bool = False
    #: Re-profile when an invocation is this many times larger than
    #: the invocation its table-G alpha was derived from (the paper
    #: repeats profiling "for workloads where the same kernel behaves
    #: differently over time"); the new alpha is accumulated
    #: sample-weighted, per Fig. 7 line 26.
    reprofile_growth: float = 4.0
    #: Override the platform's GPU_PROFILE_SIZE (None = use spec).
    gpu_profile_size: Optional[int] = None

    # -- resilience knobs (docs/ROBUSTNESS.md) -----------------------------------

    #: Retries for one failed GPU profiling chunk (0 = no retry).
    max_profile_retries: int = 2
    #: Simulated idle backoff before a retry; grows linearly with the
    #: attempt number.  Defaults to 0 (immediate retry): on an
    #: integrated part an idle backoff drops the package into its
    #: low-power state, and the post-idle DVFS ramp costs far more than
    #: the backoff buys.  Raise it on platforms whose transients need
    #: settle time.
    retry_backoff_s: float = 0.0
    #: After any observed GPU fault, route *new* invocations of that
    #: kernel to the CPU for this long (a circuit-breaker half-open
    #: window).  Defaults to 0 (disabled): on the integrated platform a
    #: cooldown makes many-tiny-invocation workloads alternate between
    #: GPU and CPU execution, and every alternation pays the package's
    #: post-idle DVFS ramp tax - measured campaigns show the cooldown
    #: *raising* EDP under faults.  The knob remains for discrete-GPU
    #: style platforms where backing off a flaky device is cheap.
    fault_cooldown_s: float = 0.0
    #: Per-kernel GPU-fault budget with leaky-bucket semantics: every
    #: observed fault fills the bucket by one, every successful GPU
    #: operation drains it by one.  When the bucket reaches this level
    #: the kernel degrades to CPU-only execution for the rest of the
    #: run (sticky).  Transient faults on a mostly-healthy GPU never
    #: exhaust it; a dead GPU exhausts it after ~budget consecutive
    #: failures, bounding the total time wasted on a lost cause.
    fault_budget: int = 8
    #: Watchdog cap on profiling rounds per invocation - a faulty
    #: platform must not trap the scheduler in an endless profile loop.
    max_profile_rounds: int = 12
    #: Re-reads of a busy ``gpu_busy`` counter before trusting it
    #: (debounce against transient flapping; 0 = trust the first read).
    gpu_busy_rechecks: int = 1
    #: Idle pause between ``gpu_busy`` re-reads.  An immediate re-read
    #: (0.0, the default) already filters a transient flap; a positive
    #: pause trades simulated time for robustness to longer glitches.
    gpu_busy_recheck_idle_s: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject out-of-range knob values with a precise message."""
        def _require(ok: bool, name: str, why: str) -> None:
            if not ok:
                raise SchedulingError(
                    f"SchedulerConfig.{name}={getattr(self, name)!r} "
                    f"invalid: {why}")

        _require(0.0 < self.alpha_step <= 1.0, "alpha_step",
                 "must be in (0, 1]")
        _require(0.0 < self.profile_fraction <= 1.0, "profile_fraction",
                 "must be in (0, 1]")
        _require(self.chunk_growth >= 1.0, "chunk_growth", "must be >= 1")
        _require(self.reprofile_growth >= 1.0, "reprofile_growth",
                 "must be >= 1")
        _require(self.gpu_profile_size is None or self.gpu_profile_size > 0,
                 "gpu_profile_size", "must be positive (or None)")
        _require(self.max_profile_retries >= 0, "max_profile_retries",
                 "must be >= 0")
        _require(self.retry_backoff_s >= 0.0, "retry_backoff_s",
                 "must be >= 0")
        _require(self.fault_cooldown_s >= 0.0, "fault_cooldown_s",
                 "must be >= 0")
        _require(self.fault_budget >= 1, "fault_budget", "must be >= 1")
        _require(self.max_profile_rounds >= 1, "max_profile_rounds",
                 "must be >= 1")
        _require(self.gpu_busy_rechecks >= 0, "gpu_busy_rechecks",
                 "must be >= 0")
        _require(self.gpu_busy_recheck_idle_s >= 0.0,
                 "gpu_busy_recheck_idle_s", "must be >= 0")


_CONFIG_FIELD_NAMES = tuple(f.name for f in fields(SchedulerConfig))


@dataclass
class EasConfig(SchedulerConfig):
    """Deprecated alias of :class:`SchedulerConfig` (PR-1 name).

    Constructing it still works - the fields are identical - but emits
    a :class:`DeprecationWarning`.  New code should build a
    :class:`SchedulerConfig`.
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "EasConfig is deprecated; use repro.SchedulerConfig instead",
            DeprecationWarning, stacklevel=3)
        super().__post_init__()


#: Deprecated alias: per-invocation diagnostics are now full
#: :class:`~repro.obs.records.DecisionRecord` audit records (the old
#: ``EasDecision`` field names are preserved as a subset).
EasDecision = DecisionRecord


class EnergyAwareScheduler:
    """EAS: black-box energy-aware CPU-GPU work partitioning."""

    def __init__(self, characterization: PlatformCharacterization,
                 metric: EnergyMetric,
                 classifier: Optional[OnlineClassifier] = None,
                 config: Optional[SchedulerConfig] = None,
                 observer: Optional[Observer] = None,
                 **legacy_knobs) -> None:
        if legacy_knobs:
            unknown = [k for k in legacy_knobs
                       if k not in _CONFIG_FIELD_NAMES]
            if unknown:
                raise SchedulingError(
                    f"unknown scheduler option(s) {sorted(unknown)}; "
                    f"valid SchedulerConfig fields: "
                    f"{sorted(_CONFIG_FIELD_NAMES)}")
            if config is not None:
                raise SchedulingError(
                    "pass tuning knobs via SchedulerConfig or as keyword "
                    "arguments, not both")
            warnings.warn(
                "passing scheduler knobs as loose keyword arguments is "
                "deprecated; pass config=SchedulerConfig(...) instead",
                DeprecationWarning, stacklevel=2)
            config = SchedulerConfig(**legacy_knobs)
        self.characterization = characterization
        self.metric = metric
        self.classifier = classifier or OnlineClassifier()
        self.config = config or SchedulerConfig()
        self.observer = resolve(observer)
        self.table = KernelTable()
        self.optimizer = AlphaOptimizer(metric=metric, step=self.config.alpha_step)
        #: One :class:`DecisionRecord` per invocation, every exit path.
        self.decisions: List[DecisionRecord] = []
        #: Leaky-bucket fault level per kernel key (faults fill,
        #: successes drain; degradation triggers at the budget).
        self.fault_counts: Dict[str, int] = {}
        #: Lifetime GPU-fault totals per kernel key (diagnostics only).
        self.fault_totals: Dict[str, int] = {}
        #: Kernels whose fault budget is exhausted: CPU-only from now on.
        self.degraded_kernels: Set[str] = set()
        #: Per-kernel circuit-breaker: simulated time before which new
        #: invocations stay on the CPU after an observed GPU fault.
        self.gpu_retry_after: Dict[str, float] = {}
        #: Most recent fault events per kernel, so later CPU-only
        #: invocations of a degraded kernel can still name the faults
        #: that tripped its budget.
        self.last_fault_events: Dict[str, List[str]] = {}
        #: Fault events observed during the invocation in flight.
        self._fault_events: List[str] = []
        #: Co-run context tag for contention-aware table-G keying (see
        #: docs/ARCHITECTURE.md).  When set (e.g. ``"mp2"`` by the
        #: multiprogram coordinator), table-G entries are keyed
        #: ``"<kernel>|co:<context>"`` so an alpha derived while the
        #: GPU was leased to another tenant is never reused as if it
        #: were a solo measurement.  Empty = solo: keys, and therefore
        #: single-tenant behaviour, are unchanged.
        self.co_run_context: str = ""
        #: Simulated idle seconds burned inside the gpu_busy debounce
        #: loop during the invocation in flight (charged to the
        #: invocation's decision record).
        self._debounce_idle_s: float = 0.0
        #: Table audit state of the invocation in flight.
        self._table_hit: bool = False
        self._table_usable: bool = False
        #: Set by the *final* grid search of the invocation in flight
        #: when the metric is deadline-constrained and the feasible
        #: set {alpha : T(alpha) <= deadline} came up empty - the
        #: invocation then ran at the min-T alpha and exits through
        #: EXIT_DEADLINE_INFEASIBLE instead of EXIT_PROFILED.
        self._deadline_infeasible: bool = False

    # -- SchedulerProtocol ---------------------------------------------------------

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        key = launch.kernel.key
        obs = self.observer
        if obs.enabled:
            with obs.span("eas.invocation", kernel=key,
                          n_items=launch.n_items):
                record = self._execute(launch, key)
        else:
            record = self._execute(launch, key)
        if self._fault_events:
            self.last_fault_events[key] = list(self._fault_events)
        return record

    def _execute(self, launch: KernelLaunch, key: str) -> SchedulerRecord:
        obs = self.observer
        obs.inc("eas.invocations")
        tkey = self._table_key(key)
        self.table.note_invocation(tkey)
        self._fault_events = []
        self._debounce_idle_s = 0.0
        self._deadline_infeasible = False

        profile_size = (self.config.gpu_profile_size
                        or launch.processor.spec.gpu_profile_size)
        entry = self.table.lookup(tkey)
        # Audit both facts: *presence* of a table entry (table_hit) and
        # actual reuse *eligibility* under the hygiene rules
        # (table_usable) - a quarantined or provisional entry must not
        # inflate the reported hit rate.
        self._table_hit = entry is not None
        self._table_usable = self._entry_usable(entry, launch.n_items,
                                                profile_size)
        if self._table_hit:
            obs.inc("eas.table_hits")
        if self._table_usable:
            obs.inc("eas.table_usable")

        # GPU busy with other work: CPU-alone fallback (Section 5),
        # debounced against transient counter flapping.
        if self._gpu_busy_debounced(launch):
            launch.run_cpu_only()
            self._emit_decision(
                launch, key, EXIT_GPU_BUSY, alpha=0.0,
                fallback_reason="GPU busy with other work (A26 counter)",
                notes=["gpu-busy-fallback"])
            return SchedulerRecord(alpha=0.0, notes=["gpu-busy-fallback"])

        # Fault budget exhausted earlier: the GPU is not to be trusted
        # for this kernel any more.  Graceful degradation, not a crash.
        # A kernel still inside its post-fault cooldown window gets the
        # same CPU-only treatment, but only until the window closes.
        degraded = key in self.degraded_kernels
        if degraded or launch.processor.now < self.gpu_retry_after.get(key, 0.0):
            launch.run_cpu_only()
            if degraded:
                reason = (f"fault budget ({self.config.fault_budget}) "
                          "exhausted on an earlier invocation; kernel is "
                          "CPU-only (sticky)")
                exit_path = EXIT_DEGRADED
            else:
                reason = (f"inside post-fault cooldown window (until "
                          f"t={self.gpu_retry_after.get(key, 0.0):.6f}s)")
                exit_path = EXIT_COOLDOWN
            self._emit_decision(
                launch, key, exit_path, alpha=0.0, from_table=True,
                fallback_reason=reason,
                fault_events=self.last_fault_events.get(key, []),
                notes=[GPU_FAULTED_FALLBACK])
            return SchedulerRecord(alpha=0.0, notes=[GPU_FAULTED_FALLBACK])

        # Lines 2-4: reuse alpha from table G.  ``table_usable``
        # already encodes the hygiene rules: provisional entries
        # (small-N fast path) are only reused for further small
        # launches; a launch big enough to profile supersedes them, as
        # does one far larger than the entry was derived from; and
        # quarantined entries (derived under faults) are never reused.
        if self._table_usable and not self.config.always_reprofile:
            record = self._run_remainder(launch, key, entry.alpha)
            fell_back = GPU_FAULTED_FALLBACK in record.notes
            self._emit_decision(
                launch, key, EXIT_TABLE_HIT, alpha=record.alpha,
                category=entry.category, from_table=True,
                fallback_reason=("partitioned phase faulted; remainder "
                                 "drained on the CPU" if fell_back else None),
                notes=record.notes)
            record.profiled = False
            return record

        # Lines 6-10: too little parallelism for the GPU at all.
        if launch.n_items < profile_size:
            launch.run_cpu_only()
            self.table.record(tkey, alpha=0.0, weight=launch.n_items,
                              provisional=True)
            self._emit_decision(
                launch, key, EXIT_SMALL_N, alpha=0.0,
                fallback_reason=(f"N={launch.n_items:.0f} below "
                                 f"GPU_PROFILE_SIZE={profile_size}"),
                notes=["small-n-cpu-only"])
            return SchedulerRecord(alpha=0.0, profiled=False,
                                   notes=["small-n-cpu-only"])

        # Lines 13-22: repeated profiling for half of the iterations,
        # capped by the round watchdog on hostile platforms.
        aggregate = ProfileAggregate()
        profiling_time = 0.0
        chunk = float(profile_size)
        alpha: Optional[float] = None
        category = None
        sanity_note: Optional[str] = None
        faulted = False
        decision_overhead = 0.0
        keep_profiling_above = launch.n_items * (1.0 - self.config.profile_fraction)
        while (launch.remaining_items > keep_profiling_above
               and aggregate.num_rounds < self.config.max_profile_rounds):
            # Never hand the GPU more than half the remainder: a
            # profiling round must leave work for the partitioned run.
            chunk_now = min(chunk, launch.remaining_items * 0.5)
            if chunk_now < 64.0:
                break
            with obs.span("eas.profiling_round", kernel=key,
                          round=aggregate.num_rounds, chunk=chunk_now):
                observation, had_fault = self._profile_with_retry(
                    launch, key, chunk_now)
            faulted = faulted or had_fault
            if observation is None:
                if key in self.degraded_kernels:
                    # Fault budget exhausted: the GPU really is gone.
                    return self._degrade(launch, key, aggregate,
                                         profiling_time)
                # Retries exhausted but budget remains: keep trying -
                # each failure fills the leaky bucket, so this persists
                # for at most ~budget attempts before degrading.
                continue
            obs.inc("eas.profiling_rounds")
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            prev_alpha = alpha
            with obs.span("eas.grid_search", kernel=key):
                alpha, category, sanity_note = self._derive_alpha(
                    aggregate, launch.remaining_items, launch.n_items, tkey)
            round_overhead = time.perf_counter() - t_host
            decision_overhead += round_overhead
            obs.observe("eas.grid_search_us", round_overhead * 1e6)
            chunk *= self.config.chunk_growth
            if (prev_alpha is not None
                    and abs(alpha - prev_alpha) <= self.config.convergence_tolerance):
                break

        while alpha is None:
            # No successful profiling round yet - either the while loop
            # never ran (e.g. N barely above the profile size, or a
            # pathological profile fraction) or every round faulted
            # without exhausting the budget.  Take a minimal round,
            # persisting until it succeeds or the budget is gone.
            # Clamp the chunk to the 64-item floor used in the main
            # loop so a tiny remainder cannot trip profile_chunk's
            # positivity check.
            chunk_now = max(64.0, min(chunk, launch.remaining_items * 0.5))
            with obs.span("eas.profiling_round", kernel=key,
                          round=aggregate.num_rounds, chunk=chunk_now,
                          minimal=True):
                observation, had_fault = self._profile_with_retry(
                    launch, key, chunk_now)
            faulted = faulted or had_fault
            if observation is None:
                if key in self.degraded_kernels:
                    return self._degrade(launch, key, aggregate,
                                         profiling_time)
                continue
            obs.inc("eas.profiling_rounds")
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            t_host = time.perf_counter()
            with obs.span("eas.grid_search", kernel=key):
                alpha, category, sanity_note = self._derive_alpha(
                    aggregate, launch.remaining_items, launch.n_items, tkey)
            round_overhead = time.perf_counter() - t_host
            decision_overhead += round_overhead
            obs.observe("eas.grid_search_us", round_overhead * 1e6)

        if sanity_note is not None:
            faulted = True
            self._fault_events.append(f"derive-alpha: {sanity_note}")

        # Lines 23-25: partitioned execution of the remainder.
        record = self._run_remainder(launch, key, alpha)
        fell_back = GPU_FAULTED_FALLBACK in record.notes
        faulted = faulted or fell_back

        # Line 26: sample-weighted accumulation into G.  An alpha
        # derived while faults were observed is quarantined: recorded
        # for diagnostics, never reused, never diluting a clean entry.
        self.table.record(tkey, alpha=alpha, weight=launch.n_items,
                          category=category, quarantined=faulted)
        record.profiled = True
        record.profile_rounds = aggregate.num_rounds
        record.profiling_time_s = profiling_time
        if category is not None:
            record.notes.insert(0, f"category={category.short_code}")
        if sanity_note is not None:
            record.notes.append(sanity_note)
        exit_path = EXIT_PROFILED
        fallback_reason = ("partitioned phase faulted; remainder "
                           "drained on the CPU" if fell_back else None)
        if self._deadline_infeasible:
            # The constrained grid search found an empty feasible set:
            # no alpha meets the metric's deadline, so the invocation
            # ran at the min-T alpha.  Same profiled pipeline, its own
            # exit path - a campaign must be able to count how often
            # the budget was simply unattainable.
            exit_path = EXIT_DEADLINE_INFEASIBLE
            deadline = getattr(self.metric, "deadline_s", float("nan"))
            if fallback_reason is None:
                fallback_reason = (
                    f"no alpha meets deadline_s={deadline:g}; "
                    f"running min-T alpha={alpha:.2f}")
            record.notes.append("deadline-infeasible")
        self._emit_decision(
            launch, key, exit_path, alpha=record.alpha,
            category=category, rounds=aggregate.num_rounds,
            cpu_throughput=aggregate.cpu_throughput,
            gpu_throughput=aggregate.gpu_throughput,
            decision_overhead=decision_overhead,
            quarantined=faulted,
            fallback_reason=fallback_reason,
            notes=record.notes)
        return record

    # -- resilience internals ------------------------------------------------------

    def _gpu_busy_debounced(self, launch: KernelLaunch) -> bool:
        """A26 check that a transiently flapping counter cannot spoof.

        A clean read costs nothing; only a busy reading triggers the
        (cheap) re-check loop.  Simulated time idled between re-reads
        is accumulated into ``_debounce_idle_s`` and charged to the
        invocation's decision record - the check burns real simulated
        time and must not vanish from the latency accounting.
        """
        if not launch.processor.gpu_busy:
            return False
        for _ in range(max(0, self.config.gpu_busy_rechecks)):
            if self.config.gpu_busy_recheck_idle_s > 0.0:
                launch.processor.idle(self.config.gpu_busy_recheck_idle_s)
                self._debounce_idle_s += self.config.gpu_busy_recheck_idle_s
            if not launch.processor.gpu_busy:
                self.observer.inc("eas.gpu_busy_flaps_filtered")
                return False
        return True

    def _table_key(self, key: str) -> str:
        """Table-G key for a kernel under the current co-run context.

        Solo (empty context) keys are the raw kernel key; under
        contention the key carries the context tag, so alphas profiled
        while the GPU was leased to another tenant never masquerade as
        solo measurements (and vice versa).  Fault bookkeeping stays on
        the raw key: device health is context-independent.
        """
        if not self.co_run_context:
            return key
        return f"{key}|co:{self.co_run_context}"

    def _entry_usable(self, entry, n_items: float,
                      profile_size: float) -> bool:
        """Reuse eligibility of a table-G entry for this launch.

        Encodes the hygiene rules (quarantine, provisional, outgrown)
        but not the ``always_reprofile`` ablation knob - the audit
        reports what the table held, not what the ablation discarded.
        """
        if entry is None or entry.quarantined:
            return False
        if n_items >= profile_size:
            outgrown = n_items > (self.config.reprofile_growth
                                  * max(entry.derived_at_items, 1.0))
            if entry.provisional or outgrown:
                return False
        return True

    def _register_fault(self, launch: KernelLaunch, key: str,
                        stage: str = "gpu", detail: str = "") -> bool:
        """Fill the kernel's fault bucket; True when the budget is gone.

        Every fault also arms the circuit-breaker cooldown: new
        invocations of this kernel stay CPU-only until it expires.
        """
        count = self.fault_counts.get(key, 0) + 1
        self.fault_counts[key] = count
        self.fault_totals[key] = self.fault_totals.get(key, 0) + 1
        self.gpu_retry_after[key] = (launch.processor.now
                                     + self.config.fault_cooldown_s)
        event = f"{stage}: {detail}" if detail else stage
        self._fault_events.append(event)
        obs = self.observer
        if obs.enabled:
            obs.inc("eas.gpu_faults")
            obs.set_gauge(f"eas.fault_bucket.{key}", count)
            obs.event("eas.gpu_fault", kernel=key, stage=stage, detail=detail,
                      bucket_level=count)
        if count >= self.config.fault_budget:
            self.degraded_kernels.add(key)
            return True
        return False

    def _register_success(self, key: str) -> None:
        """A successful GPU operation drains the leaky fault bucket."""
        count = self.fault_counts.get(key, 0)
        if count > 0:
            self.fault_counts[key] = count - 1
            if self.observer.enabled:
                self.observer.set_gauge(f"eas.fault_bucket.{key}", count - 1)

    def _profile_with_retry(
            self, launch: KernelLaunch, key: str, chunk: float,
    ) -> "Tuple[Optional[ProfileObservation], bool]":
        """One profiling round with bounded retry-with-backoff.

        An observation in which the GPU made *zero progress* on a
        nonzero chunk is itself a fault manifestation (a hung or lying
        device): it is discarded and retried, never averaged into the
        throughput estimates.  Returns ``(observation, had_fault)``;
        observation is None when the retries (or the kernel's whole
        fault budget) are exhausted and the caller must degrade to
        CPU-only execution.
        """
        had_fault = False
        attempts = max(0, self.config.max_profile_retries) + 1
        for attempt in range(attempts):
            if attempt > 0:
                self.observer.inc("eas.profile_retries")
            detail = ""
            try:
                observation = launch.profile_chunk(chunk)
            except GpuFaultError as exc:
                observation = None
                detail = str(exc)
            if observation is not None and observation.gpu_items > 0.0:
                self._register_success(key)
                return observation, had_fault
            if observation is not None:
                detail = "GPU reported zero progress on a nonzero chunk"
            had_fault = True
            if self._register_fault(launch, key, stage="profile-chunk",
                                    detail=detail):
                return None, True
            self._backoff(launch, attempt)
        return None, True

    def _backoff(self, launch: KernelLaunch, attempt: int) -> None:
        backoff = self.config.retry_backoff_s * (attempt + 1)
        if backoff > 0.0:
            launch.processor.idle(backoff)

    def _run_remainder(self, launch: KernelLaunch, key: str,
                       alpha: float) -> SchedulerRecord:
        """Run everything still pooled at ``alpha``, surviving GPU faults.

        A faulted partitioned phase leaves its items pooled: the launch
        is retried until it succeeds or the kernel's fault budget runs
        out (a transient failure must not forfeit the GPU - and its
        characterized gains - for a whole remainder), after which the
        remainder is drained on the CPU and the invocation flagged, so
        the runtime's all-items-processed contract holds on any
        platform.
        """
        notes: List[str] = []
        if launch.remaining_items > 0 and alpha > 0.0:
            attempt = 0
            while True:
                try:
                    launch.run_partitioned(alpha)
                    self._register_success(key)
                    return SchedulerRecord(alpha=alpha, notes=notes)
                except GpuFaultError as exc:
                    if self._register_fault(launch, key, stage="partitioned",
                                            detail=str(exc)):
                        break
                    self._backoff(launch, attempt)
                    attempt += 1
            if not launch.is_done:
                launch.run_cpu_only()
            alpha = 0.0
            notes.append(GPU_FAULTED_FALLBACK)
        elif launch.remaining_items > 0:
            launch.run_partitioned(alpha)
        return SchedulerRecord(alpha=alpha, notes=notes)

    def _degrade(self, launch: KernelLaunch, key: str,
                 aggregate: ProfileAggregate,
                 profiling_time: float) -> SchedulerRecord:
        """Graceful degradation: drain the remainder on the CPU."""
        self.degraded_kernels.add(key)
        if not launch.is_done:
            launch.run_cpu_only()
        self._emit_decision(
            launch, key, EXIT_FAULT_DEGRADED, alpha=0.0,
            rounds=aggregate.num_rounds,
            fallback_reason=(f"fault budget ({self.config.fault_budget}) "
                             f"exhausted during profiling after "
                             f"{aggregate.num_rounds} successful round(s); "
                             "remainder drained on the CPU"),
            notes=[GPU_FAULTED_FALLBACK])
        return SchedulerRecord(alpha=0.0, profiled=True,
                               profile_rounds=aggregate.num_rounds,
                               profiling_time_s=profiling_time,
                               notes=[GPU_FAULTED_FALLBACK])

    def _emit_decision(self, launch: KernelLaunch, key: str, exit_path: str,
                       alpha: float, category=None, from_table: bool = False,
                       rounds: int = 0,
                       cpu_throughput: Optional[float] = None,
                       gpu_throughput: Optional[float] = None,
                       decision_overhead: float = 0.0,
                       fallback_reason: Optional[str] = None,
                       quarantined: bool = False,
                       fault_events: Optional[List[str]] = None,
                       notes: Optional[List[str]] = None) -> DecisionRecord:
        """Build and store the invocation's audit record (every exit).

        Table audit flags (``table_hit``/``table_usable``) and the
        debounce idle charge come from the per-invocation state set up
        at the top of :meth:`_execute`, so every exit path reports them
        consistently.
        """
        events = list(self._fault_events if fault_events is None
                      else fault_events)
        record = DecisionRecord(
            exit_path=exit_path,
            kernel=key,
            n_items=launch.n_items,
            alpha=alpha,
            category_code=category.short_code if category else None,
            from_table=from_table,
            profile_rounds=rounds,
            cpu_throughput=cpu_throughput,
            gpu_throughput=gpu_throughput,
            decision_overhead_s=decision_overhead,
            faults_observed=self.fault_totals.get(key, 0),
            fault_events=events,
            fallback_reason=fallback_reason,
            quarantined=quarantined,
            table_hit=self._table_hit,
            table_usable=self._table_usable,
            debounce_idle_s=self._debounce_idle_s,
            sim_time_s=launch.processor.now,
            notes=list(notes or []))
        self.decisions.append(record)
        obs = self.observer
        if obs.enabled:
            obs.decision(record)
            obs.inc(f"eas.exit.{exit_path}")
            if decision_overhead > 0.0:
                obs.observe("eas.decision_overhead_us",
                            decision_overhead * 1e6)
            if record.debounce_idle_s > 0.0:
                obs.observe("eas.gpu_busy_debounce_idle_s",
                            record.debounce_idle_s)
        return record

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _sane_throughput(value: float) -> float:
        """Clamp a throughput reading to [0, sane); garbage becomes 0."""
        if not math.isfinite(value) or value < 0.0 or value >= MAX_SANE_THROUGHPUT:
            return 0.0
        return value

    def _derive_alpha(self, aggregate: ProfileAggregate,
                      remaining_items: float, total_items: float,
                      key: str) -> "Tuple[float, object, Optional[str]]":
        """Classify, select the power curve, and minimize the objective.

        T(alpha) is linear in N, so the argmin over alpha does not
        depend on the iteration count; when profiling happened to drain
        the pool (tiny invocations), a nominal fraction of the full
        invocation keeps the model non-degenerate instead of letting
        every objective tie at zero.

        Returns ``(alpha, category, sanity_note)``.  On insane inputs
        (NaN/zero/absurd throughputs - a faulty counter bank, a dud GPU
        launch) the sanity_note explains the fallback taken: the
        last-known-good table-G alpha when one exists, CPU-only
        otherwise.  This method never raises on bad measurements.
        """
        r_c = self._sane_throughput(aggregate.cpu_throughput)
        r_g = self._sane_throughput(aggregate.gpu_throughput)
        if r_c <= 0.0 and r_g <= 0.0:
            # Profiling observed no progress on either device: the
            # observations are unusable.  Fall back to the last-known-
            # good table entry, else to the CPU-only safe default.
            # The applied alpha did not come from a constrained search,
            # so any infeasible verdict from an earlier round is void.
            self._deadline_infeasible = False
            entry = self.table.lookup(key)
            if (entry is not None and not entry.provisional
                    and not entry.quarantined):
                return entry.alpha, entry.category, "alpha-from-last-good"
            return 0.0, None, "alpha-fallback-cpu-only"
        n_model = max(remaining_items, 0.25 * total_items, 1.0)
        inputs = ClassificationInputs(
            l3_misses=max(0.0, aggregate.l3_misses),
            loadstore_instructions=max(0.0, aggregate.loadstore_instructions),
            cpu_throughput=r_c,
            gpu_throughput=r_g,
            remaining_items=n_model)
        category = self.classifier.classify(inputs)
        curve = self.characterization.curve_for(category)
        model = ExecutionTimeModel(cpu_throughput=r_c, gpu_throughput=r_g,
                                   n_items=n_model)
        if isinstance(self.metric, ConstrainedMetric):
            # Feasible-set search: minimize the base objective over
            # {alpha : T(alpha) <= deadline}, min-T fallback when the
            # set is empty.  Each round overwrites the flag, so the
            # *final* (converged) search decides the exit path.
            alpha, _, feasible = self.optimizer.best_alpha_constrained(
                curve, model, self.metric.deadline_s)
            self._deadline_infeasible = not feasible
        else:
            alpha, _ = self.optimizer.best_alpha(curve, model)
        return alpha, category, None


# Imported late to keep the module header focused on the algorithm.
from repro.core.time_model import ExecutionTimeModel  # noqa: E402
