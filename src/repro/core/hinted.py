"""Cooperative power-hint scheduling (the paper's future work).

The paper closes with: "In future, we would like to incorporate
feedback from our user-level runtime in power management techniques."
This module implements that idea on the simulated SoC, whose PCU
exposes a single *efficiency hint* knob
(:meth:`repro.soc.simulator.IntegratedProcessor.set_power_hint`):

* hint 0 - stock policy (what the black-box paper assumes);
* hint 1 - pace the co-executing CPU down toward the activation floor.

:class:`HintedEnergyAwareScheduler` extends EAS with a joint
(hint, alpha) search before each partitioned run.  The adjustment model
is deliberately simple and black-box-compatible - the runtime knows the
hint's *definition* (a CPU frequency pacing fraction) but nothing about
the PCU's internals:

* the co-executing CPU's throughput scales linearly with its paced
  frequency;
* the CPU's share of the characterized P(alpha) scales superlinearly
  (a generic CMOS frequency-power assumption).

Profiling always runs under the stock policy, so throughput estimates
and table-G state stay comparable with plain EAS; the hint applies only
to partitioned execution and is cleared afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.characterization import PlatformCharacterization
from repro.core.classification import OnlineClassifier
from repro.core.metrics import EnergyMetric
from repro.core.optimizer import alpha_grid
from repro.core.power_curve import PowerCurve
from repro.core.profiling import ProfileAggregate
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError
from repro.runtime.runtime import KernelLaunch, SchedulerRecord

#: Exponent relating CPU frequency to CPU dynamic power in the hint
#: adjustment model (a generic CMOS assumption, not a PCU secret).
_POWER_EXPONENT = 2.2


@dataclass(frozen=True)
class HintDecision:
    """One partitioned run's chosen (hint, alpha) and its prediction."""

    hint: float
    alpha: float
    predicted_objective: float


class HintedEnergyAwareScheduler(EnergyAwareScheduler):
    """EAS plus the runtime->PCU efficiency hint of the conclusion."""

    def __init__(self, characterization: PlatformCharacterization,
                 metric: EnergyMetric,
                 classifier: Optional[OnlineClassifier] = None,
                 config: Optional[SchedulerConfig] = None,
                 hint_levels: Tuple[float, ...] = (0.0, 0.5, 1.0)) -> None:
        super().__init__(characterization, metric, classifier, config)
        if not hint_levels or any(not 0.0 <= h <= 1.0 for h in hint_levels):
            raise SchedulingError("hint levels must be in [0, 1]")
        self.hint_levels = tuple(hint_levels)
        self.hint_decisions: List[HintDecision] = []
        #: Kernel key -> (R_C, R_G, category) from the latest profiling.
        self._profiled: Dict[str, tuple] = {}
        self._active_key: Optional[str] = None

    # -- SchedulerProtocol --------------------------------------------------------

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        """Fig. 7 with a hinted partitioned phase.

        The base algorithm is reused verbatim; only the single
        ``run_partitioned`` call it makes per invocation is redirected
        through the joint (hint, alpha) search.
        """
        processor = launch.processor
        processor.set_power_hint(0.0)
        self._active_key = launch.kernel.key
        original_run_partitioned = launch.run_partitioned

        def hinted_run_partitioned(alpha: float):
            decision = self._best_hint(alpha, launch)
            self.hint_decisions.append(decision)
            processor.set_power_hint(decision.hint)
            try:
                return original_run_partitioned(decision.alpha)
            finally:
                processor.set_power_hint(0.0)

        launch.run_partitioned = hinted_run_partitioned  # type: ignore[method-assign]
        try:
            return super().execute(launch)
        finally:
            launch.run_partitioned = original_run_partitioned  # type: ignore[method-assign]
            processor.set_power_hint(0.0)
            self._active_key = None

    # -- base-class hook ----------------------------------------------------------

    def _derive_alpha(self, aggregate: ProfileAggregate,
                      remaining_items: float, total_items: float, key: str):
        """Capture profiled throughputs per kernel for the hint model."""
        alpha, category, sanity_note = super()._derive_alpha(
            aggregate, remaining_items, total_items, key)
        if self._active_key is not None:
            self._profiled[self._active_key] = (
                aggregate.cpu_throughput, aggregate.gpu_throughput, category)
        return alpha, category, sanity_note

    # -- internals ------------------------------------------------------------------

    def _best_hint(self, base_alpha: float, launch: KernelLaunch) -> HintDecision:
        """Joint (hint, alpha) grid search around the base decision.

        Falls back to the base alpha under the stock policy when no
        profiling data exists for this kernel (e.g. the small-N path).
        """
        profiled = self._profiled.get(launch.kernel.key)
        if profiled is None or profiled[1] <= 0.0 or profiled[2] is None:
            return HintDecision(hint=0.0, alpha=base_alpha,
                                predicted_objective=float("nan"))
        r_c, r_g, category = profiled
        curve = self.characterization.curve_for(category)

        spec = launch.processor.spec
        pace_floor = (spec.pcu.cpu_gpu_activation_floor_hz
                      / spec.pcu.cpu_coexec_freq_hz)
        n_items = max(launch.remaining_items, 1.0)

        best: Optional[HintDecision] = None
        for hint in self.hint_levels:
            ratio = 1.0 - hint * (1.0 - pace_floor)
            model = ExecutionTimeModel(
                cpu_throughput=max(r_c * ratio, 1e-9),
                gpu_throughput=r_g, n_items=n_items)
            for alpha in alpha_grid(self.config.alpha_step):
                t = model.total_time(alpha)
                p = self._hinted_power(curve, alpha, ratio)
                objective = self.metric.value(p, t)
                if best is None or objective < best.predicted_objective:
                    best = HintDecision(hint=hint, alpha=alpha,
                                        predicted_objective=objective)
        assert best is not None
        return best

    @staticmethod
    def _hinted_power(curve: PowerCurve, alpha: float, ratio: float) -> float:
        """Adjust P(alpha) for a paced co-executing CPU.

        The CPU's contribution to package power at offload ratio alpha
        is estimated as the curve's excess over its GPU-alone endpoint
        weighted by the CPU's work share; pacing scales that
        contribution by ratio**2.2.
        """
        base = curve.power(alpha)
        if ratio >= 1.0 or alpha >= 1.0:
            return base
        gpu_alone = curve.power(1.0)
        cpu_contribution = max(base - gpu_alone, 0.0) * (1.0 - alpha)
        paced = cpu_contribution * ratio ** _POWER_EXPONENT
        return max(base - cpu_contribution + paced, 1e-3)
