"""Online workload classification (Sections 3.1 and 5).

From the profiling round's hardware-counter readings and throughput
estimates, decide which of the eight power-characterization categories
the running workload belongs to:

* **memory- vs compute-bound**: the ratio of L3 cache misses to
  load/store instructions retired, thresholded at 0.33 (the paper found
  this single threshold sufficient on both platforms);
* **short vs long, per device**: the paper classifies a workload Short
  "if the estimated execution time for the remaining iterations
  (N_rem) after profiling is less than 100 ms".  The taxonomy is
  per-device ("short or long execution on the CPU alone / GPU alone"),
  so we estimate each device's *alone* time for the remainder:
  CPU time = N_rem / R_C, GPU time = N_rem / R_G.  (Estimating each
  device's share at alpha_PERF instead would make the two estimates
  identical by construction - both devices finish together at
  alpha_PERF - and collapse the taxonomy; see DESIGN.md, decision 3.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Boundedness, DeviceDuration, WorkloadCategory
from repro.errors import ClassificationError
from repro.units import ms

#: Memory-bound threshold on (L3 misses / load-store instructions).
MEMORY_INTENSITY_THRESHOLD = 0.33

#: Short/long threshold on estimated remaining execution time.
SHORT_LONG_THRESHOLD_S = ms(100.0)


@dataclass(frozen=True)
class ClassificationInputs:
    """Everything the classifier needs from one profiling round."""

    l3_misses: float
    loadstore_instructions: float
    cpu_throughput: float   # R_C
    gpu_throughput: float   # R_G
    remaining_items: float  # N_rem


@dataclass(frozen=True)
class OnlineClassifier:
    """Threshold-based classifier; thresholds are ablatable parameters."""

    memory_threshold: float = MEMORY_INTENSITY_THRESHOLD
    short_long_threshold_s: float = SHORT_LONG_THRESHOLD_S

    def memory_intensity(self, inputs: ClassificationInputs) -> float:
        if inputs.loadstore_instructions < 0 or inputs.l3_misses < 0:
            raise ClassificationError("negative counter reading")
        if inputs.loadstore_instructions == 0:
            return 0.0
        return inputs.l3_misses / inputs.loadstore_instructions

    def boundedness(self, inputs: ClassificationInputs) -> Boundedness:
        if self.memory_intensity(inputs) > self.memory_threshold:
            return Boundedness.MEMORY
        return Boundedness.COMPUTE

    def device_durations(
            self, inputs: ClassificationInputs
    ) -> "tuple[DeviceDuration, DeviceDuration]":
        """(CPU, GPU) device-alone short/long estimates for N_rem."""
        if inputs.remaining_items < 0:
            raise ClassificationError("negative remaining_items")
        if inputs.cpu_throughput <= 0 and inputs.gpu_throughput <= 0:
            raise ClassificationError("both devices report zero throughput")
        cpu_time = (inputs.remaining_items / inputs.cpu_throughput
                    if inputs.cpu_throughput > 0 else float("inf"))
        gpu_time = (inputs.remaining_items / inputs.gpu_throughput
                    if inputs.gpu_throughput > 0 else float("inf"))
        cpu = (DeviceDuration.SHORT if cpu_time < self.short_long_threshold_s
               else DeviceDuration.LONG)
        gpu = (DeviceDuration.SHORT if gpu_time < self.short_long_threshold_s
               else DeviceDuration.LONG)
        return cpu, gpu

    def classify(self, inputs: ClassificationInputs) -> WorkloadCategory:
        """Full 8-way classification of one profiled workload."""
        cpu, gpu = self.device_durations(inputs)
        return WorkloadCategory(
            boundedness=self.boundedness(inputs),
            cpu_duration=cpu,
            gpu_duration=gpu)
