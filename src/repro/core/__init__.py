"""The paper's contribution: black-box energy-aware scheduling.

* :mod:`repro.core.metrics` - energy-related objective functions
  (energy, energy-delay product, ED^2, user-defined);
* :mod:`repro.core.time_model` - the execution-time model T(alpha),
  Eqs. 1-4 of the paper;
* :mod:`repro.core.power_curve` - sixth-order polynomial power
  characterization functions P(alpha);
* :mod:`repro.core.categories` - the 8-way workload taxonomy
  ({memory, compute} x {CPU short, long} x {GPU short, long});
* :mod:`repro.core.classification` - the online classifier (0.33
  miss-ratio threshold, 100 ms short/long threshold);
* :mod:`repro.core.characterization` - one-time platform power
  characterization from the eight micro-benchmarks;
* :mod:`repro.core.optimizer` - grid search for the alpha minimizing
  OBJ(P(alpha), T(alpha));
* :mod:`repro.core.profiling` - lightweight online profiling
  (OnlineProfile of Fig. 7) and sample-weighted aggregation;
* :mod:`repro.core.scheduler` - the EAS algorithm (Fig. 7);
* :mod:`repro.core.baselines` - CPU, GPU, PERF and Oracle comparison
  schedulers from Section 5.
"""

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    StaticAlphaScheduler,
)
from repro.core.categories import Boundedness, DeviceDuration, WorkloadCategory
from repro.core.characterization import (
    PlatformCharacterization,
    PowerCharacterizer,
)
from repro.core.classification import OnlineClassifier
from repro.core.metrics import ED2, EDP, ENERGY, EnergyMetric
from repro.core.optimizer import AlphaOptimizer
from repro.core.power_curve import PowerCurve
from repro.core.scheduler import EnergyAwareScheduler
from repro.core.time_model import ExecutionTimeModel
from repro.core.validation import ValidationIssue, validate_characterization

__all__ = [
    "EnergyMetric",
    "ENERGY",
    "EDP",
    "ED2",
    "ExecutionTimeModel",
    "PowerCurve",
    "Boundedness",
    "DeviceDuration",
    "WorkloadCategory",
    "OnlineClassifier",
    "PowerCharacterizer",
    "PlatformCharacterization",
    "AlphaOptimizer",
    "EnergyAwareScheduler",
    "CpuOnlyScheduler",
    "validate_characterization",
    "ValidationIssue",
    "GpuOnlyScheduler",
    "StaticAlphaScheduler",
    "ProfiledPerfScheduler",
]
