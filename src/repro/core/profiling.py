"""Lightweight online profiling (Section 3.1, Fig. 7 lines 28-35).

The actual profiling *mechanics* - offloading GPU_PROFILE_SIZE items,
draining the shared pool with CPU workers, terminating them when the
GPU finishes - live in :meth:`repro.runtime.runtime.KernelLaunch.profile_chunk`.
This module aggregates the observations:

* :class:`ProfileAggregate` combines repeated profiling rounds into
  sample-weighted throughput estimates (R_C, R_G) and pooled hardware
  counters;
* :class:`KernelTable` is the global table G of Fig. 7, mapping kernel
  keys to their scheduled alpha, accumulated across invocations via
  the sample-weighted technique of the paper's reference [12]:
  ``alpha <- (alpha*w + alpha_new*w_new) / (w + w_new)`` with weights
  equal to the iteration counts the estimates are based on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.categories import WorkloadCategory, category_from_codes
from repro.errors import SchedulingError
from repro.runtime.runtime import ProfileObservation


@dataclass
class ProfileAggregate:
    """Sample-weighted combination of profiling rounds for one kernel."""

    rounds: List[ProfileObservation] = field(default_factory=list)

    def add(self, observation: ProfileObservation) -> None:
        self.rounds.append(observation)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def _require_rounds(self) -> None:
        if not self.rounds:
            raise SchedulingError("no profiling rounds recorded")

    @property
    def cpu_throughput(self) -> float:
        """R_C: total CPU items over total CPU-worker time."""
        self._require_rounds()
        items = sum(r.cpu_items for r in self.rounds)
        time = sum(r.cpu_time_s for r in self.rounds)
        return items / time if time > 0 else 0.0

    @property
    def gpu_throughput(self) -> float:
        """R_G: total GPU items over total proxy-observed GPU time."""
        self._require_rounds()
        items = sum(r.gpu_items for r in self.rounds)
        time = sum(r.gpu_time_s for r in self.rounds)
        return items / time if time > 0 else 0.0

    @property
    def total_items(self) -> float:
        self._require_rounds()
        return sum(r.cpu_items + r.gpu_items for r in self.rounds)

    @property
    def total_time_s(self) -> float:
        self._require_rounds()
        return sum(r.cpu_time_s for r in self.rounds)

    @property
    def l3_misses(self) -> float:
        self._require_rounds()
        return sum(r.counters.l3_misses for r in self.rounds)

    @property
    def loadstore_instructions(self) -> float:
        self._require_rounds()
        return sum(r.counters.loadstore_instructions for r in self.rounds)

    @property
    def instructions_retired(self) -> float:
        self._require_rounds()
        return sum(r.counters.instructions_retired for r in self.rounds)


@dataclass
class KernelTableEntry:
    """One row of the global table G."""

    alpha: float
    weight: float
    category: Optional[WorkloadCategory] = None
    invocations: int = 0
    #: Largest invocation size the alpha was ever derived from.  A
    #: much larger invocation triggers re-profiling (with
    #: sample-weighted accumulation), because an alpha derived from a
    #: tiny early frontier says little about a 100x larger one.
    derived_at_items: float = 0.0
    #: True when the entry came from the small-N CPU-only fast path
    #: (Fig. 7 lines 6-10) rather than from profiling.  A later
    #: invocation large enough to profile replaces it outright - road
    #: network BFS launches a 1-item frontier first, and pinning the
    #: whole application to the CPU because of it would be absurd.
    provisional: bool = False
    #: True when the alpha was derived while the scheduler observed
    #: device faults (failed/retried GPU launches, insane throughput
    #: readings).  Quarantined entries are never reused for scheduling
    #: and never dilute a clean entry - one bad profile must not poison
    #: every future invocation of the kernel.
    quarantined: bool = False

    def accumulate(self, alpha: float, weight: float) -> None:
        """Sample-weighted running average of alpha."""
        if weight <= 0:
            raise SchedulingError("accumulation weight must be positive")
        total = self.weight + weight
        self.alpha = (self.alpha * self.weight + alpha * weight) / total
        self.weight = total

    # -- serialization (durable table G, see repro.service.store) ----------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form preserving every hygiene flag.

        The category serializes as its short code; quarantine and
        provisional flags and the sample counts round-trip exactly, so
        a persisted entry carries the same reuse eligibility as the
        live one (see :meth:`KernelTable.to_rows`).
        """
        return {
            "alpha": self.alpha,
            "weight": self.weight,
            "category": (self.category.short_code
                         if self.category is not None else None),
            "invocations": self.invocations,
            "derived_at_items": self.derived_at_items,
            "provisional": bool(self.provisional),
            "quarantined": bool(self.quarantined),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelTableEntry":
        code = data.get("category")
        return cls(
            alpha=float(data["alpha"]),
            weight=float(data["weight"]),
            category=category_from_codes(code) if code else None,
            invocations=int(data.get("invocations", 0)),
            derived_at_items=float(data.get("derived_at_items", 0.0)),
            provisional=bool(data.get("provisional", False)),
            quarantined=bool(data.get("quarantined", False)),
        )


class KernelTable:
    """The global runtime table G: kernel key -> scheduling state."""

    def __init__(self) -> None:
        self._entries: Dict[str, KernelTableEntry] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[KernelTableEntry]:
        return self._entries.get(key)

    def record(self, key: str, alpha: float, weight: float,
               category: Optional[WorkloadCategory] = None,
               provisional: bool = False,
               quarantined: bool = False) -> KernelTableEntry:
        """First-time record, or sample-weighted accumulation thereafter.

        A profiled (non-provisional) record replaces a provisional one
        outright instead of averaging with it.  Quarantined records
        (derived under observed faults) never dilute a clean entry, and
        the first clean *profiled* record replaces a quarantined one
        outright; a clean provisional record never lifts a quarantine
        (it observed the CPU fast path, not the faulting device).
        """
        if not 0.0 <= alpha <= 1.0:
            raise SchedulingError(f"alpha {alpha} outside [0, 1]")
        entry = self._entries.get(key)
        if entry is None:
            entry = KernelTableEntry(alpha=alpha, weight=weight,
                                     category=category, provisional=provisional,
                                     derived_at_items=weight,
                                     quarantined=quarantined)
            self._entries[key] = entry
        elif quarantined and not entry.quarantined:
            # Fault-tainted observations must not poison a clean entry.
            pass
        elif entry.quarantined and not quarantined and provisional:
            # A provisional small-N record (CPU-only fast path) carries
            # no evidence that the device recovered; letting it replace
            # a quarantined entry would launder the taint and resurrect
            # a fault-derived alpha as trustworthy.
            pass
        elif (entry.provisional and not provisional) or \
                (entry.quarantined and not quarantined):
            entry.alpha = alpha
            entry.weight = weight
            entry.category = category
            entry.provisional = provisional
            entry.quarantined = False
            entry.derived_at_items = weight
        elif provisional and not entry.provisional:
            # A small-N CPU-only fast-path record carries no information
            # about partitionable launches; never let it dilute a
            # profiled alpha.
            pass
        else:
            entry.accumulate(alpha, weight)
            entry.derived_at_items = max(entry.derived_at_items, weight)
            if category is not None:
                entry.category = category
        return entry

    def note_invocation(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.invocations += 1

    def clear(self) -> None:
        self._entries.clear()

    # -- serialization (durable table G, see repro.service.store) ----------------

    def to_rows(self) -> List[Dict[str, Any]]:
        """Every entry as a JSON-ready row, sorted by key.

        Keys are persisted verbatim - including co-run context keys
        like ``"kernel|co:mp2"`` - so contention-derived alphas never
        collapse into (or masquerade as) solo entries after a
        persist/load round trip.
        """
        return [{"key": key, **entry.to_dict()}
                for key, entry in sorted(self._entries.items())]

    @classmethod
    def from_rows(cls, rows: List[Dict[str, Any]]) -> "KernelTable":
        table = cls()
        table.merge_rows(rows)
        return table

    def merge_rows(self, rows: List[Dict[str, Any]]) -> None:
        """Load persisted rows, replacing same-key entries wholesale.

        Replacement (not :meth:`record`-style accumulation) is
        deliberate: a persisted row is the *final* state of a previous
        scheduler lifetime, and merging it through the hygiene rules
        would double-count the samples it already aggregates.
        """
        for row in rows:
            data = dict(row)
            key = data.pop("key")
            self._entries[key] = KernelTableEntry.from_dict(data)
