"""Comparison schedulers from Section 5.

* :class:`CpuOnlyScheduler` - multi-core CPU execution (the paper's
  TBB-based **CPU** strategy);
* :class:`GpuOnlyScheduler` - GPU-alone execution through the vendor
  driver (**GPU**);
* :class:`StaticAlphaScheduler` - fixed GPU offload ratio for every
  invocation; the harness's exhaustive **Oracle** and **PERF**
  searches are sweeps over this scheduler;
* :class:`ProfiledPerfScheduler` - the *online* performance-oriented
  scheduler: profiles like EAS but always picks alpha_PERF
  (Eq. 2), ignoring power.  Used in ablations to separate "EAS's
  profiling" from "EAS's energy objective";
* :class:`RaceToIdleScheduler` - the classic race-to-idle energy
  policy: sprint the invocation at alpha_PERF, then park the package
  in deep idle for whatever remains of the deadline budget.  The
  counterpoint to EAS's "ride the energy-optimal operating point"
  answer - compared head-to-head in the ``objectives`` figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.profiling import KernelTable, ProfileAggregate
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError
from repro.runtime.runtime import KernelLaunch, SchedulerRecord


class CpuOnlyScheduler:
    """Run everything on the multi-core CPU."""

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_cpu_only()
        return SchedulerRecord(alpha=0.0)


class GpuOnlyScheduler:
    """Offload everything to the GPU."""

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_gpu_only()
        return SchedulerRecord(alpha=1.0)


@dataclass
class StaticAlphaScheduler:
    """Fixed alpha for every invocation (exhaustive-search building block)."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise SchedulingError(f"alpha {self.alpha} outside [0, 1]")

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_partitioned(self.alpha)
        return SchedulerRecord(alpha=self.alpha)


class ProfiledPerfScheduler:
    """Online best-performance partitioning: profile, then alpha_PERF.

    Structurally identical to EAS (same profiling, same table-G reuse)
    but the objective is execution time alone - the adaptive scheduler
    of the paper's reference [12].
    """

    def __init__(self, profile_fraction: float = 0.5,
                 chunk_growth: float = 2.0,
                 gpu_profile_size: Optional[int] = None) -> None:
        self.profile_fraction = profile_fraction
        self.chunk_growth = chunk_growth
        self.gpu_profile_size = gpu_profile_size
        self.table = KernelTable()

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        key = launch.kernel.key
        profile_size = (self.gpu_profile_size
                        or launch.processor.spec.gpu_profile_size)
        entry = self.table.lookup(key)
        if entry is not None and launch.n_items >= profile_size:
            outgrown = launch.n_items > 4.0 * max(entry.derived_at_items, 1.0)
            if entry.provisional or outgrown:
                entry = None
        if entry is not None:
            launch.run_partitioned(entry.alpha)
            return SchedulerRecord(alpha=entry.alpha)

        if launch.n_items < profile_size:
            launch.run_cpu_only()
            self.table.record(key, alpha=0.0, weight=launch.n_items,
                              provisional=True)
            return SchedulerRecord(alpha=0.0, notes=["small-n-cpu-only"])

        aggregate = ProfileAggregate()
        profiling_time = 0.0
        chunk = float(profile_size)
        keep_above = launch.n_items * (1.0 - self.profile_fraction)
        while launch.remaining_items > keep_above:
            chunk_now = min(chunk, launch.remaining_items * 0.5)
            if chunk_now < 64.0:
                break
            observation = launch.profile_chunk(chunk_now)
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            chunk *= self.chunk_growth
        if aggregate.num_rounds == 0:
            observation = launch.profile_chunk(
                min(chunk, launch.remaining_items * 0.5))
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)

        model = ExecutionTimeModel(
            cpu_throughput=aggregate.cpu_throughput,
            gpu_throughput=aggregate.gpu_throughput,
            n_items=max(launch.remaining_items, 0.25 * launch.n_items, 1.0))
        alpha = model.alpha_perf
        if launch.remaining_items > 0:
            launch.run_partitioned(alpha)
        self.table.record(key, alpha=alpha, weight=launch.n_items)
        return SchedulerRecord(alpha=alpha, profiled=True,
                               profile_rounds=aggregate.num_rounds,
                               profiling_time_s=profiling_time)


class RaceToIdleScheduler(ProfiledPerfScheduler):
    """Sprint at alpha_PERF, then deep-idle out the deadline slack.

    The simulated SoC exposes no DVFS knob, so the "max frequency"
    half of classic race-to-idle maps to the fastest available
    operating point: both devices co-executing at the throughput-
    optimal split alpha_PERF (the :class:`ProfiledPerfScheduler`
    sprint, table-G reuse included).  The "idle" half is literal:
    once the invocation finishes, the package drops into its deep
    idle state until the per-invocation deadline budget is spent, so
    the software-visible time and MSR energy of the invocation cover
    the whole budget window - the accounting that makes race-to-idle
    honestly comparable against DVFS-riding strategies like EAS.

    With no ``deadline_s`` there is no slack to bank and the policy
    degenerates to the pure sprint.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 profile_fraction: float = 0.5,
                 chunk_growth: float = 2.0,
                 gpu_profile_size: Optional[int] = None) -> None:
        super().__init__(profile_fraction=profile_fraction,
                         chunk_growth=chunk_growth,
                         gpu_profile_size=gpu_profile_size)
        if deadline_s is not None and not (
                isinstance(deadline_s, (int, float))
                and not isinstance(deadline_s, bool)
                and math.isfinite(deadline_s) and deadline_s > 0):
            raise SchedulingError(
                f"race-to-idle deadline_s must be a positive finite "
                f"number (or None), got {deadline_s!r}")
        self.deadline_s = deadline_s

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        t0 = launch.processor.now
        record = super().execute(launch)
        record.notes.append("race-to-idle")
        if self.deadline_s is not None:
            slack = self.deadline_s - (launch.processor.now - t0)
            if slack > 0.0:
                launch.processor.idle(slack)
                record.notes.append(f"idle-slack:{slack:.3f}s")
            else:
                record.notes.append("deadline-overrun")
        return record
