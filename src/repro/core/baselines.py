"""Comparison schedulers from Section 5.

* :class:`CpuOnlyScheduler` - multi-core CPU execution (the paper's
  TBB-based **CPU** strategy);
* :class:`GpuOnlyScheduler` - GPU-alone execution through the vendor
  driver (**GPU**);
* :class:`StaticAlphaScheduler` - fixed GPU offload ratio for every
  invocation; the harness's exhaustive **Oracle** and **PERF**
  searches are sweeps over this scheduler;
* :class:`ProfiledPerfScheduler` - the *online* performance-oriented
  scheduler: profiles like EAS but always picks alpha_PERF
  (Eq. 2), ignoring power.  Used in ablations to separate "EAS's
  profiling" from "EAS's energy objective".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.profiling import KernelTable, ProfileAggregate
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError
from repro.runtime.runtime import KernelLaunch, SchedulerRecord


class CpuOnlyScheduler:
    """Run everything on the multi-core CPU."""

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_cpu_only()
        return SchedulerRecord(alpha=0.0)


class GpuOnlyScheduler:
    """Offload everything to the GPU."""

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_gpu_only()
        return SchedulerRecord(alpha=1.0)


@dataclass
class StaticAlphaScheduler:
    """Fixed alpha for every invocation (exhaustive-search building block)."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise SchedulingError(f"alpha {self.alpha} outside [0, 1]")

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        launch.run_partitioned(self.alpha)
        return SchedulerRecord(alpha=self.alpha)


class ProfiledPerfScheduler:
    """Online best-performance partitioning: profile, then alpha_PERF.

    Structurally identical to EAS (same profiling, same table-G reuse)
    but the objective is execution time alone - the adaptive scheduler
    of the paper's reference [12].
    """

    def __init__(self, profile_fraction: float = 0.5,
                 chunk_growth: float = 2.0,
                 gpu_profile_size: Optional[int] = None) -> None:
        self.profile_fraction = profile_fraction
        self.chunk_growth = chunk_growth
        self.gpu_profile_size = gpu_profile_size
        self.table = KernelTable()

    def execute(self, launch: KernelLaunch) -> SchedulerRecord:
        key = launch.kernel.key
        profile_size = (self.gpu_profile_size
                        or launch.processor.spec.gpu_profile_size)
        entry = self.table.lookup(key)
        if entry is not None and launch.n_items >= profile_size:
            outgrown = launch.n_items > 4.0 * max(entry.derived_at_items, 1.0)
            if entry.provisional or outgrown:
                entry = None
        if entry is not None:
            launch.run_partitioned(entry.alpha)
            return SchedulerRecord(alpha=entry.alpha)

        if launch.n_items < profile_size:
            launch.run_cpu_only()
            self.table.record(key, alpha=0.0, weight=launch.n_items,
                              provisional=True)
            return SchedulerRecord(alpha=0.0, notes=["small-n-cpu-only"])

        aggregate = ProfileAggregate()
        profiling_time = 0.0
        chunk = float(profile_size)
        keep_above = launch.n_items * (1.0 - self.profile_fraction)
        while launch.remaining_items > keep_above:
            chunk_now = min(chunk, launch.remaining_items * 0.5)
            if chunk_now < 64.0:
                break
            observation = launch.profile_chunk(chunk_now)
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)
            chunk *= self.chunk_growth
        if aggregate.num_rounds == 0:
            observation = launch.profile_chunk(
                min(chunk, launch.remaining_items * 0.5))
            profiling_time += observation.cpu_time_s
            aggregate.add(observation)

        model = ExecutionTimeModel(
            cpu_throughput=aggregate.cpu_throughput,
            gpu_throughput=aggregate.gpu_throughput,
            n_items=max(launch.remaining_items, 0.25 * launch.n_items, 1.0))
        alpha = model.alpha_perf
        if launch.remaining_items > 0:
            launch.run_partitioned(alpha)
        self.table.record(key, alpha=alpha, weight=launch.n_items)
        return SchedulerRecord(alpha=alpha, profiled=True,
                               profile_rounds=aggregate.num_rounds,
                               profiling_time_s=profiling_time)
