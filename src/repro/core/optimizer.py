"""Grid search for the metric-optimal GPU offload ratio.

Step 20 of Fig. 7: evaluate the target function OBJ(alpha) =
metric(P(alpha), T(alpha)) for alpha in [0, 1] at fixed increments
(the paper uses 0.1; 0.05 is mentioned as an option) and take the
minimum.  The paper notes this evaluation takes negligible time
compared to program execution - our profiling-overhead benchmark
confirms the same holds here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.metrics import ConstrainedMetric, EnergyMetric
from repro.core.power_curve import PowerCurve
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError

#: The paper's grid increment.
DEFAULT_ALPHA_STEP = 0.1


def alpha_grid(step: float = DEFAULT_ALPHA_STEP) -> "list[float]":
    """The closed grid {0, step, 2*step, ..., 1}.

    The grid is *closed*: both endpoints are always present.  For a
    non-divisor step (e.g. 0.3) the rounded interior points stop short
    of 1.0, so the pure-GPU endpoint is appended explicitly - dropping
    it silently excluded alpha=1.0 from the search and could make
    ``best_alpha`` wrong for GPU-dominant kernels.
    """
    if not 0.0 < step <= 1.0:
        raise SchedulingError("alpha step must be in (0, 1]")
    n = int(round(1.0 / step))
    grid = [min(1.0, i * step) for i in range(n + 1)]
    if grid[-1] != 1.0:
        grid.append(1.0)
    return grid


@dataclass(frozen=True)
class AlphaEvaluation:
    """OBJ evaluated at one candidate alpha."""

    alpha: float
    predicted_time_s: float
    predicted_power_w: float
    objective: float


@dataclass(frozen=True)
class AlphaOptimizer:
    """Minimizes an energy metric over the alpha grid."""

    metric: EnergyMetric
    step: float = DEFAULT_ALPHA_STEP

    def evaluate(self, power_curve: PowerCurve,
                 time_model: ExecutionTimeModel) -> List[AlphaEvaluation]:
        """OBJ at every grid point (for reporting and Fig. 1 sweeps)."""
        evaluations = []
        for alpha in alpha_grid(self.step):
            t = time_model.total_time(alpha)
            p = power_curve.power(alpha)
            obj = self.metric.value(p, t) if np.isfinite(t) else float("inf")
            evaluations.append(AlphaEvaluation(
                alpha=alpha, predicted_time_s=t, predicted_power_w=p,
                objective=obj))
        return evaluations

    def best_alpha(self, power_curve: PowerCurve,
                   time_model: ExecutionTimeModel) -> Tuple[float, float]:
        """(alpha, objective) minimizing the metric on the grid.

        When the optimizer's metric is a
        :class:`~repro.core.metrics.ConstrainedMetric` the search is
        the feasible-set one (:meth:`best_alpha_constrained`), so
        every caller of this method honors the deadline; the
        feasibility flag is dropped here - callers that need it (the
        scheduler's ``deadline-infeasible`` exit) use
        :meth:`best_alpha_constrained` directly.
        """
        if isinstance(self.metric, ConstrainedMetric):
            alpha, objective, _ = self.best_alpha_constrained(
                power_curve, time_model, self.metric.deadline_s)
            return alpha, objective
        evaluations = self.evaluate(power_curve, time_model)
        best = min(evaluations, key=lambda e: e.objective)
        if not np.isfinite(best.objective):
            raise SchedulingError("no feasible alpha: both devices stalled")
        return best.alpha, best.objective

    def best_alpha_constrained(
            self, power_curve: PowerCurve, time_model: ExecutionTimeModel,
            deadline_s: float) -> Tuple[float, float, bool]:
        """Feasible-set grid search: min metric over {a : T(a) <= deadline}.

        Returns ``(alpha, objective, feasible)``.  A grid point whose
        predicted time lands *exactly* on the deadline is feasible
        (the budget is inclusive).  When no grid point meets the
        deadline the search falls back to the minimum-T point -
        finish as soon as possible - and reports ``feasible=False``
        so the scheduler can emit the ``deadline-infeasible`` exit.
        Ties (equal objectives, or equal times in the fallback) break
        toward the lowest alpha, matching the unconstrained search's
        first-of-equals grid order.
        """
        evaluations = self.evaluate(power_curve, time_model)
        feasible_set = [e for e in evaluations
                        if e.predicted_time_s <= deadline_s]
        if feasible_set:
            best = min(feasible_set, key=lambda e: e.objective)
            if np.isfinite(best.objective):
                return best.alpha, best.objective, True
        finite = [e for e in evaluations
                  if np.isfinite(e.predicted_time_s)]
        if not finite:
            raise SchedulingError("no feasible alpha: both devices stalled")
        best = min(finite, key=lambda e: e.predicted_time_s)
        return best.alpha, best.objective, False


def best_alpha_for(metric: EnergyMetric, power_fn: Callable[[float], float],
                   time_fn: Callable[[float], float],
                   step: float = DEFAULT_ALPHA_STEP) -> float:
    """Functional helper: minimize metric(power_fn(a), time_fn(a)) on the grid.

    Used by the Oracle baseline, which minimizes over *measured* values
    rather than model predictions.  A
    :class:`~repro.core.metrics.ConstrainedMetric` restricts the
    search to its feasible set, falling back to the min-time point
    when no grid point meets the deadline (same contract as
    :meth:`AlphaOptimizer.best_alpha_constrained`).
    """
    deadline = (metric.deadline_s
                if isinstance(metric, ConstrainedMetric) else None)
    best_a = 0.0
    best_obj = float("inf")
    fallback_a = 0.0
    fallback_t = float("inf")
    for alpha in alpha_grid(step):
        t = time_fn(alpha)
        if t < fallback_t:
            fallback_t = t
            fallback_a = alpha
        if deadline is not None and t > deadline:
            continue
        obj = metric.value(power_fn(alpha), t)
        if obj < best_obj:
            best_obj = obj
            best_a = alpha
    if not np.isfinite(best_obj):
        if deadline is not None and np.isfinite(fallback_t):
            return fallback_a
        raise SchedulingError("objective is infinite across the whole grid")
    return best_a
