"""Grid search for the metric-optimal GPU offload ratio.

Step 20 of Fig. 7: evaluate the target function OBJ(alpha) =
metric(P(alpha), T(alpha)) for alpha in [0, 1] at fixed increments
(the paper uses 0.1; 0.05 is mentioned as an option) and take the
minimum.  The paper notes this evaluation takes negligible time
compared to program execution - our profiling-overhead benchmark
confirms the same holds here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.metrics import EnergyMetric
from repro.core.power_curve import PowerCurve
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError

#: The paper's grid increment.
DEFAULT_ALPHA_STEP = 0.1


def alpha_grid(step: float = DEFAULT_ALPHA_STEP) -> "list[float]":
    """The closed grid {0, step, 2*step, ..., 1}."""
    if not 0.0 < step <= 1.0:
        raise SchedulingError("alpha step must be in (0, 1]")
    n = int(round(1.0 / step))
    return [min(1.0, i * step) for i in range(n + 1)]


@dataclass(frozen=True)
class AlphaEvaluation:
    """OBJ evaluated at one candidate alpha."""

    alpha: float
    predicted_time_s: float
    predicted_power_w: float
    objective: float


@dataclass(frozen=True)
class AlphaOptimizer:
    """Minimizes an energy metric over the alpha grid."""

    metric: EnergyMetric
    step: float = DEFAULT_ALPHA_STEP

    def evaluate(self, power_curve: PowerCurve,
                 time_model: ExecutionTimeModel) -> List[AlphaEvaluation]:
        """OBJ at every grid point (for reporting and Fig. 1 sweeps)."""
        evaluations = []
        for alpha in alpha_grid(self.step):
            t = time_model.total_time(alpha)
            p = power_curve.power(alpha)
            obj = self.metric.value(p, t) if np.isfinite(t) else float("inf")
            evaluations.append(AlphaEvaluation(
                alpha=alpha, predicted_time_s=t, predicted_power_w=p,
                objective=obj))
        return evaluations

    def best_alpha(self, power_curve: PowerCurve,
                   time_model: ExecutionTimeModel) -> Tuple[float, float]:
        """(alpha, objective) minimizing the metric on the grid."""
        evaluations = self.evaluate(power_curve, time_model)
        best = min(evaluations, key=lambda e: e.objective)
        if not np.isfinite(best.objective):
            raise SchedulingError("no feasible alpha: both devices stalled")
        return best.alpha, best.objective


def best_alpha_for(metric: EnergyMetric, power_fn: Callable[[float], float],
                   time_fn: Callable[[float], float],
                   step: float = DEFAULT_ALPHA_STEP) -> float:
    """Functional helper: minimize metric(power_fn(a), time_fn(a)) on the grid.

    Used by the Oracle baseline, which minimizes over *measured* values
    rather than model predictions.
    """
    best_a = 0.0
    best_obj = float("inf")
    for alpha in alpha_grid(step):
        obj = metric.value(power_fn(alpha), time_fn(alpha))
        if obj < best_obj:
            best_obj = obj
            best_a = alpha
    if not np.isfinite(best_obj):
        raise SchedulingError("objective is infinite across the whole grid")
    return best_a
