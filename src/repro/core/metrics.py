"""Energy-related objective metrics.

The paper optimizes "any user-defined energy-related metric that can be
expressed as a function of power consumption and program execution
time".  The three named in the paper:

* total energy      E       = P * T
* energy-delay      EDP     = E * T   = P * T^2
* energy-delay^2    ED^2    = E * T^2 = P * T^3

:class:`EnergyMetric` covers the power-of-T family and accepts an
arbitrary ``f(power_w, time_s)`` for anything exotic.  Lower is always
better.

:class:`ConstrainedMetric` adds the production-side question the paper
leaves open (ROADMAP item 3): *finish by t at lowest energy/carbon*.
It is a base metric plus a per-invocation completion budget
``deadline_s``; the optimizer minimizes the base objective over the
feasible set ``{alpha : T(alpha) <= deadline_s}`` and falls back to
min-T (flagged infeasible) when that set is empty.  Constrained
metrics are addressable by name - ``"edp@2"`` is EDP with a 2-second
budget - so they flow through :func:`metric_by_name`, scheduler
specs, cache keys, and the service's JobSpec unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import SchedulingError, UnknownNameError, closest_names

MetricFn = Callable[[float, float], float]

#: Names reserved by the standard metrics below.  A ``custom_fn``
#: metric must not reuse one: the name is the cache/spec identity, and
#: a custom "edp" would silently alias the standard EDP in
#: ``standard_metric_name`` lookups and engine cache keys.
_STANDARD_NAMES = ("energy", "edp", "ed2")


@dataclass(frozen=True)
class EnergyMetric:
    """An objective of the form ``power * time**delay_exponent`` or a
    custom function of (power, time)."""

    name: str
    delay_exponent: float = 1.0
    custom_fn: Optional[MetricFn] = None

    def __post_init__(self) -> None:
        if self.custom_fn is None and self.delay_exponent < 1.0:
            raise SchedulingError(
                "delay_exponent below 1 would not account for energy at all")
        if self.custom_fn is not None and self.name.lower() in _STANDARD_NAMES:
            raise SchedulingError(
                f"custom metric name {self.name!r} collides with the "
                f"standard metric of the same name; pick a distinct name "
                f"(standard names: {_STANDARD_NAMES})")

    def value(self, power_w: float, time_s: float) -> float:
        """Metric value; lower is better.

        ``time_s`` must be strictly positive - the same contract as
        :meth:`from_energy` (a zero-time run has no meaningful power
        reading, and accepting it here while ``from_energy`` rejects
        it made the two disagree on degenerate inputs).
        """
        if power_w < 0:
            raise SchedulingError("power must be non-negative")
        if time_s <= 0:
            raise SchedulingError("time must be positive")
        if self.custom_fn is not None:
            return self.custom_fn(power_w, time_s)
        return power_w * time_s ** self.delay_exponent

    def from_energy(self, energy_j: float, time_s: float) -> float:
        """Metric value from a measured (energy, time) pair."""
        if time_s <= 0:
            raise SchedulingError("time must be positive")
        return self.value(energy_j / time_s, time_s)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstrainedMetric(EnergyMetric):
    """A base energy metric under a per-invocation completion budget.

    Semantics: minimize the base objective over the *feasible set*
    ``{alpha : T(alpha) <= deadline_s}``; when the set is empty the
    optimizer falls back to the min-T grid point and the scheduler
    emits the ``deadline-infeasible`` exit path.  ``value`` itself is
    the base metric - the constraint lives in the feasible-set search,
    not in the objective's arithmetic.

    Built via :meth:`constrain` (or :func:`metric_by_name` with the
    ``"<base>@<deadline>"`` spelling, e.g. ``"edp@2"``); the canonical
    name embeds the deadline so the metric round-trips through every
    name-keyed surface (scheduler specs, cache keys, JobSpec).
    """

    #: Per-invocation predicted-completion budget, simulated seconds.
    deadline_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.custom_fn is not None:
            raise SchedulingError(
                "ConstrainedMetric requires a power-of-T base metric "
                "(custom_fn metrics have no name round-trip)")
        if not (isinstance(self.deadline_s, (int, float))
                and math.isfinite(self.deadline_s) and self.deadline_s > 0):
            raise SchedulingError(
                f"deadline_s must be positive and finite, "
                f"got {self.deadline_s!r}")

    @classmethod
    def constrain(cls, base: EnergyMetric,
                  deadline_s: float) -> "ConstrainedMetric":
        """``base`` under a ``deadline_s`` budget, canonically named."""
        if base.custom_fn is not None:
            raise SchedulingError(
                "cannot constrain a custom_fn metric "
                f"({base.name!r}): no name round-trip")
        if not (isinstance(deadline_s, (int, float))
                and math.isfinite(deadline_s) and deadline_s > 0):
            raise SchedulingError(
                f"deadline_s must be positive and finite, got {deadline_s!r}")
        base_name = base.name.split("@", 1)[0]
        return cls(name=f"{base_name}@{float(deadline_s):g}",
                   delay_exponent=base.delay_exponent,
                   deadline_s=float(deadline_s))

    @property
    def base_name(self) -> str:
        """Name of the unconstrained base metric (e.g. ``"edp"``)."""
        return self.name.split("@", 1)[0]

    def feasible(self, time_s: float) -> bool:
        """Whether a predicted completion time meets the budget."""
        return time_s <= self.deadline_s


#: Total energy use, E = P*T.
ENERGY = EnergyMetric(name="energy", delay_exponent=1.0)
#: Energy-delay product, EDP = P*T^2.
EDP = EnergyMetric(name="edp", delay_exponent=2.0)
#: Energy-delay-squared product, ED2 = P*T^3.
ED2 = EnergyMetric(name="ed2", delay_exponent=3.0)

_BY_NAME: Dict[str, EnergyMetric] = {m.name: m for m in (ENERGY, EDP, ED2)}


def metric_by_name(name: str) -> EnergyMetric:
    """Look up a metric by name: standard or deadline-constrained.

    Accepts the three standard names (``energy``/``edp``/``ed2``) and
    the constrained spelling ``"<base>@<deadline_s>"`` (e.g.
    ``"edp@2"``, ``"energy@0.5"``), which returns a
    :class:`ConstrainedMetric` over the named base.

    Raises :class:`~repro.errors.UnknownNameError` (which is also a
    :class:`~repro.errors.SchedulingError`) with did-you-mean
    suggestions on a miss.
    """
    key = name.lower()
    if "@" in key:
        base_name, _, deadline_text = key.partition("@")
        try:
            base = _BY_NAME[base_name]
        except KeyError:
            raise UnknownNameError(
                f"unknown metric {name!r}; the base of a constrained "
                f"metric must be one of {sorted(_BY_NAME)}",
                suggestions=closest_names(base_name, list(_BY_NAME)),
            ) from None
        try:
            deadline_s = float(deadline_text)
        except ValueError:
            raise SchedulingError(
                f"bad deadline {deadline_text!r} in metric name {name!r}; "
                f"expected '<base>@<seconds>' (e.g. 'edp@2')") from None
        return ConstrainedMetric.constrain(base, deadline_s)
    try:
        return _BY_NAME[key]
    except KeyError:
        raise UnknownNameError(
            f"unknown metric {name!r}; expected one of {sorted(_BY_NAME)} "
            f"or a constrained '<base>@<deadline_s>' (e.g. 'edp@2')",
            suggestions=closest_names(name, list(_BY_NAME)),
        ) from None
