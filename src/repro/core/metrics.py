"""Energy-related objective metrics.

The paper optimizes "any user-defined energy-related metric that can be
expressed as a function of power consumption and program execution
time".  The three named in the paper:

* total energy      E       = P * T
* energy-delay      EDP     = E * T   = P * T^2
* energy-delay^2    ED^2    = E * T^2 = P * T^3

:class:`EnergyMetric` covers the power-of-T family and accepts an
arbitrary ``f(power_w, time_s)`` for anything exotic.  Lower is always
better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import SchedulingError, UnknownNameError, closest_names

MetricFn = Callable[[float, float], float]


@dataclass(frozen=True)
class EnergyMetric:
    """An objective of the form ``power * time**delay_exponent`` or a
    custom function of (power, time)."""

    name: str
    delay_exponent: float = 1.0
    custom_fn: Optional[MetricFn] = None

    def __post_init__(self) -> None:
        if self.custom_fn is None and self.delay_exponent < 1.0:
            raise SchedulingError(
                "delay_exponent below 1 would not account for energy at all")

    def value(self, power_w: float, time_s: float) -> float:
        """Metric value; lower is better."""
        if power_w < 0 or time_s < 0:
            raise SchedulingError("power and time must be non-negative")
        if self.custom_fn is not None:
            return self.custom_fn(power_w, time_s)
        return power_w * time_s ** self.delay_exponent

    def from_energy(self, energy_j: float, time_s: float) -> float:
        """Metric value from a measured (energy, time) pair."""
        if time_s <= 0:
            raise SchedulingError("time must be positive")
        return self.value(energy_j / time_s, time_s)

    def __str__(self) -> str:
        return self.name


#: Total energy use, E = P*T.
ENERGY = EnergyMetric(name="energy", delay_exponent=1.0)
#: Energy-delay product, EDP = P*T^2.
EDP = EnergyMetric(name="edp", delay_exponent=2.0)
#: Energy-delay-squared product, ED2 = P*T^3.
ED2 = EnergyMetric(name="ed2", delay_exponent=3.0)

_BY_NAME: Dict[str, EnergyMetric] = {m.name: m for m in (ENERGY, EDP, ED2)}


def metric_by_name(name: str) -> EnergyMetric:
    """Look up one of the standard metrics by name.

    Raises :class:`~repro.errors.UnknownNameError` (which is also a
    :class:`~repro.errors.SchedulingError`) with did-you-mean
    suggestions on a miss.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise UnknownNameError(
            f"unknown metric {name!r}; expected one of {sorted(_BY_NAME)}",
            suggestions=closest_names(name, list(_BY_NAME)),
        ) from None
