"""Workload registry and evaluation suites.

``DESKTOP_SUITE`` holds all twelve paper benchmarks; ``TABLET_SUITE``
the seven that build on the 32-bit tablet toolchain (the paper's
footnote 2: the rest fail to compile under 32-bit mingw/CLANG).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownNameError, closest_names
from repro.workloads.base import Workload


def all_workloads() -> List[Workload]:
    """Fresh instances of the full twelve-benchmark suite, in the
    paper's Table 1 order."""
    # Imported here to keep module import light and cycle-free.
    from repro.workloads.barneshut import BarnesHut
    from repro.workloads.bfs import BreadthFirstSearch
    from repro.workloads.blackscholes import BlackScholes
    from repro.workloads.connected_components import ConnectedComponents
    from repro.workloads.facedetect import FaceDetect
    from repro.workloads.mandelbrot import Mandelbrot
    from repro.workloads.matmul import MatrixMultiply
    from repro.workloads.nbody import NBody
    from repro.workloads.raytracer import RayTracer
    from repro.workloads.seismic import Seismic
    from repro.workloads.skiplist import SkipList
    from repro.workloads.shortest_path import ShortestPath

    return [
        BarnesHut(),
        BreadthFirstSearch(),
        ConnectedComponents(),
        FaceDetect(),
        Mandelbrot(),
        SkipList(),
        ShortestPath(),
        BlackScholes(),
        MatrixMultiply(),
        NBody(),
        RayTracer(),
        Seismic(),
    ]


def workload_by_abbrev(abbrev: str) -> Workload:
    """Look up a suite workload by its Table-1 abbreviation.

    Raises :class:`~repro.errors.UnknownNameError` (which is also a
    :class:`~repro.errors.WorkloadError`) with did-you-mean
    suggestions on a miss.
    """
    workloads = all_workloads()
    for workload in workloads:
        if workload.abbrev.lower() == abbrev.lower():
            return workload
    known = [w.abbrev for w in workloads]
    raise UnknownNameError(
        f"unknown workload abbreviation {abbrev!r}; "
        f"expected one of {known}",
        suggestions=closest_names(abbrev, known))


def _suites() -> "tuple[List[str], List[str]]":
    desktop = [w.abbrev for w in all_workloads()]
    tablet = [w.abbrev for w in all_workloads() if w.tablet_supported]
    return desktop, tablet


#: Abbreviations of the desktop (full) suite, Table 1 order.
DESKTOP_SUITE: List[str] = [
    "BH", "BFS", "CC", "FD", "MB", "SL", "SP", "BS", "MM", "NB", "RT", "SM",
]

#: The seven workloads the 32-bit tablet runs (Table 1, column 4).
TABLET_SUITE: List[str] = ["MB", "SL", "BS", "MM", "NB", "RT", "SM"]


def suite_workloads(tablet: bool = False) -> List[Workload]:
    """Instantiate the evaluation suite for one platform."""
    names = TABLET_SUITE if tablet else DESKTOP_SUITE
    by_abbrev: Dict[str, Workload] = {w.abbrev: w for w in all_workloads()}
    return [by_abbrev[name] for name in names]
