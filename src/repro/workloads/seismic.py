"""Seismic (SM) - TBB's seismic wave-propagation stencil.

Paper input: a 1950x1326 grid for 100 frames on both platforms; one
kernel invocation per frame.  Regular and memory-bound: each frame
streams the velocity/stress arrays through a nearest-neighbor stencil,
generating far more DRAM traffic than arithmetic.

The real implementation propagates a 2-D scalar wave from a center
impulse; validation checks the symmetry of the propagated field and
that the wavefront actually travels outward.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_GRID_ITEMS = 1950.0 * 1326.0
_FRAMES = 100


class Seismic(Workload):
    """Wave-propagation stencil, one invocation per frame."""

    name = "Seismic"
    abbrev = "SM"
    regular = True
    tablet_supported = True
    input_desktop = "1950 by 1326, 100 frames"
    input_tablet = "1950 by 1326, 100 frames"
    expected_compute_bound = False
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        # One item = one grid cell per frame: a 5-point stencil's worth
        # of loads/stores, streaming (partially prefetchable) traffic.
        # The unblocked stencil is dominated by the latency of its
        # neighbour loads (low effective IPC) rather than raw
        # bandwidth; misses per load/store stay above the paper's 0.33
        # memory-bound threshold.
        return KernelCostModel(
            name="sm-cells",
            instructions_per_item=90.0,
            loadstore_fraction=0.13,
            l3_miss_rate=0.34,
            cpu_simd_efficiency=0.060,
            gpu_simd_efficiency=0.0285,
            gpu_divergence=0.05,
            gpu_traffic_factor=1.0,
            item_cost_cv=0.0,
            rng_tag=12,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        return [InvocationSpec(n_items=_GRID_ITEMS) for _ in range(_FRAMES)]

    def validate(self) -> None:
        """Impulse propagation must stay symmetric and move outward."""
        n = 101
        field = np.zeros((n, n))
        prev = np.zeros((n, n))
        field[n // 2, n // 2] = 1.0
        for _ in range(20):
            field, prev = wave_step(field, prev, courant=0.4)
        # Four-fold symmetry of the propagated field.
        if not np.allclose(field, field[::-1, :], atol=1e-12):
            raise WorkloadError("field lost vertical symmetry")
        if not np.allclose(field, field[:, ::-1], atol=1e-12):
            raise WorkloadError("field lost horizontal symmetry")
        if not np.allclose(field, field.T, atol=1e-12):
            raise WorkloadError("field lost diagonal symmetry")
        # The wavefront has left the center region.
        center_energy = np.abs(field[n // 2 - 2:n // 2 + 3,
                                     n // 2 - 2:n // 2 + 3]).sum()
        ring_energy = np.abs(field).sum() - center_energy
        if ring_energy <= center_energy:
            raise WorkloadError("wave did not propagate outward")
        # Boundary untouched after only 20 steps at courant 0.4.
        if np.abs(field[0, :]).max() > 1e-9 or np.abs(field[:, 0]).max() > 1e-9:
            raise WorkloadError("wave reached the boundary implausibly fast")

    def make_executable_kernel(self) -> Kernel:
        """A real one-frame stencil kernel (item = one grid row)."""
        n = 128
        field = np.zeros((n, n))
        field[n // 2, n // 2] = 1.0
        prev = np.zeros((n, n))
        out = np.zeros((n, n))

        def body(lo: int, hi: int) -> None:
            out[lo:hi] = frame_rows(field, prev, lo, hi)

        kernel = Kernel(name="sm-real", cost=self.cost_model(), cpu_fn=body)
        kernel.field = field      # type: ignore[attr-defined]
        kernel.previous = prev    # type: ignore[attr-defined]
        kernel.output = out       # type: ignore[attr-defined]
        return kernel


def wave_step(field: np.ndarray, prev: np.ndarray,
              courant: float = 0.4) -> "tuple[np.ndarray, np.ndarray]":
    """One explicit finite-difference step of the 2-D wave equation.

    Returns (new_field, field).  ``courant`` must satisfy the CFL
    condition (< 1/sqrt(2)) for stability.
    """
    if courant >= 0.7071:
        raise WorkloadError("courant number violates the CFL condition")
    if field.shape != prev.shape:
        raise WorkloadError("field and prev shapes disagree")
    lap = np.zeros_like(field)
    lap[1:-1, 1:-1] = (field[:-2, 1:-1] + field[2:, 1:-1]
                       + field[1:-1, :-2] + field[1:-1, 2:]
                       - 4.0 * field[1:-1, 1:-1])
    new = 2.0 * field - prev + (courant ** 2) * lap
    new[0, :] = new[-1, :] = 0.0
    new[:, 0] = new[:, -1] = 0.0
    return new, field


def frame_rows(field: np.ndarray, prev: np.ndarray, row_lo: int, row_hi: int,
               courant: float = 0.4) -> np.ndarray:
    """Stencil update restricted to rows [row_lo, row_hi) - the
    data-parallel item of the kernel (used by the examples)."""
    n_rows = field.shape[0]
    if not 0 <= row_lo <= row_hi <= n_rows:
        raise WorkloadError("row range out of bounds")
    lo = max(row_lo, 1)
    hi = min(row_hi, n_rows - 1)
    out = np.zeros((row_hi - row_lo, field.shape[1]))
    if hi > lo:
        lap = (field[lo - 1:hi - 1, 1:-1] + field[lo + 1:hi + 1, 1:-1]
               + field[lo:hi, :-2] + field[lo:hi, 2:]
               - 4.0 * field[lo:hi, 1:-1])
        seg = 2.0 * field[lo:hi] - prev[lo:hi]
        seg[:, 1:-1] += (courant ** 2) * lap
        seg[:, 0] = seg[:, -1] = 0.0
        out[lo - row_lo:hi - row_lo] = seg
    return out
