"""Matrix Multiply (MM) - dense GEMM.

Paper input: 2048x2048 on the desktop (one kernel invocation over
2048^2 output elements), 1024x1024 on the tablet.  Regular and
compute-bound; both devices vectorize well, with the GPU ~2.5x faster
on the desktop.

The real implementation is a cache-blocked matmul whose parallel item
is one output tile row, validated against ``numpy @``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.runtime.workstealing import WorkStealingPool
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_DIM = 2048
_TABLET_DIM = 1024


class MatrixMultiply(Workload):
    """Dense GEMM; one long compute-bound kernel."""

    name = "Matrix Multiply"
    abbrev = "MM"
    regular = True
    tablet_supported = True
    input_desktop = "2048 by 2048"
    input_tablet = "1024x1024"
    expected_compute_bound = True
    expected_cpu_short = False
    expected_gpu_short = False

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        dim = _TABLET_DIM if tablet else _DESKTOP_DIM
        # One item = one output element: a dim-length dot product.
        return KernelCostModel(
            name="mm-element",
            instructions_per_item=6.0 * dim,
            loadstore_fraction=0.33,
            l3_miss_rate=0.003,
            cpu_simd_efficiency=0.90,
            gpu_simd_efficiency=0.85,
            gpu_divergence=0.0,
            item_cost_cv=0.0,
            rng_tag=9,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        dim = _TABLET_DIM if tablet else _DESKTOP_DIM
        return [InvocationSpec(n_items=float(dim * dim))]

    def validate(self) -> None:
        """Blocked matmul through the work-stealing pool vs numpy."""
        rng = np.random.default_rng(3)
        n = 160
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = np.zeros((n, n))

        def body(lo: int, hi: int) -> None:
            out[lo:hi, :] = blocked_matmul_rows(a, b, lo, hi, block=32)

        pool = WorkStealingPool(num_workers=4, chunk=16)
        pool.run(body, 0, n)
        if not np.allclose(out, a @ b, atol=1e-9):
            raise WorkloadError("blocked matmul disagrees with numpy")

    def make_executable_kernel(self) -> Kernel:
        rng = np.random.default_rng(4)
        n = 128
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = np.zeros((n, n))

        def body(lo: int, hi: int) -> None:
            out[lo:hi, :] = blocked_matmul_rows(a, b, lo, hi, block=32)

        kernel = Kernel(name="mm-real", cost=self.cost_model(), cpu_fn=body)
        kernel.operands = (a, b)   # type: ignore[attr-defined]
        kernel.output = out        # type: ignore[attr-defined]
        return kernel


def blocked_matmul_rows(a: np.ndarray, b: np.ndarray, row_lo: int,
                        row_hi: int, block: int = 64) -> np.ndarray:
    """Rows [row_lo, row_hi) of A @ B with k-blocking for cache reuse."""
    if a.shape[1] != b.shape[0]:
        raise WorkloadError("inner dimensions disagree")
    if not 0 <= row_lo <= row_hi <= a.shape[0]:
        raise WorkloadError("row range out of bounds")
    k = a.shape[1]
    out = np.zeros((row_hi - row_lo, b.shape[1]))
    for k0 in range(0, k, block):
        k1 = min(k, k0 + block)
        out += a[row_lo:row_hi, k0:k1] @ b[k0:k1, :]
    return out
