"""Blackscholes (BS) - PARSEC option pricing.

Paper input: 64K options per invocation, 2000 invocations on the
desktop (2,621,440 options on the tablet).  Regular and compute-bound:
the closed-form Black-Scholes formula per option, dominated by
exp/log/sqrt - ideal SIMD/SIMT material, so the GPU enjoys a solid
speedup.

The real implementation prices both calls and puts and is validated
against scipy's normal CDF plus put-call parity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_OPTIONS = 64.0 * 1024.0
_DESKTOP_LAUNCHES = 2000
_TABLET_OPTIONS = 2621440.0
_TABLET_LAUNCHES = 2000


class BlackScholes(Workload):
    """Closed-form option pricing, regular and compute-bound."""

    name = "Blackscholes"
    abbrev = "BS"
    regular = True
    tablet_supported = True
    input_desktop = "64K"
    input_tablet = "2621440"
    expected_compute_bound = True
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        return KernelCostModel(
            name="bs-options",
            instructions_per_item=350.0,
            loadstore_fraction=0.15,
            l3_miss_rate=0.004,
            cpu_simd_efficiency=0.85,
            gpu_simd_efficiency=0.95,
            gpu_divergence=0.0,
            gpu_instruction_expansion=1.1,
            item_cost_cv=0.0,
            rng_tag=8,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            return [InvocationSpec(n_items=_TABLET_OPTIONS)
                    for _ in range(_TABLET_LAUNCHES)]
        return [InvocationSpec(n_items=_DESKTOP_OPTIONS)
                for _ in range(_DESKTOP_LAUNCHES)]

    def validate(self) -> None:
        """Check against scipy's CDF and put-call parity."""
        from scipy.stats import norm

        rng = np.random.default_rng(17)
        n = 4096
        opts = OptionBatch(
            spot=rng.uniform(20.0, 120.0, n),
            strike=rng.uniform(20.0, 120.0, n),
            rate=rng.uniform(0.01, 0.08, n),
            volatility=rng.uniform(0.1, 0.6, n),
            expiry=rng.uniform(0.1, 2.0, n),
        )
        call, put = black_scholes_price(opts)

        d1 = (np.log(opts.spot / opts.strike)
              + (opts.rate + 0.5 * opts.volatility ** 2) * opts.expiry) \
            / (opts.volatility * np.sqrt(opts.expiry))
        d2 = d1 - opts.volatility * np.sqrt(opts.expiry)
        ref_call = (opts.spot * norm.cdf(d1)
                    - opts.strike * np.exp(-opts.rate * opts.expiry) * norm.cdf(d2))
        if not np.allclose(call, ref_call, rtol=1e-9, atol=1e-9):
            raise WorkloadError("call prices disagree with the scipy reference")
        # Put-call parity: C - P = S - K * exp(-rT).
        parity = call - put - (opts.spot
                               - opts.strike * np.exp(-opts.rate * opts.expiry))
        if not np.allclose(parity, 0.0, atol=1e-9):
            raise WorkloadError("put-call parity violated")
        # Deep out-of-the-money prices underflow to ~-1e-16; anything
        # materially negative is a real bug.
        if (call < -1e-9).any() or (put < -1e-9).any():
            raise WorkloadError("negative option prices")

    def make_executable_kernel(self) -> Kernel:
        """A real pricing kernel over a 16K-option batch."""
        rng = np.random.default_rng(77)
        n = 16384
        opts = OptionBatch(
            spot=rng.uniform(20.0, 120.0, n),
            strike=rng.uniform(20.0, 120.0, n),
            rate=rng.uniform(0.01, 0.08, n),
            volatility=rng.uniform(0.1, 0.6, n),
            expiry=rng.uniform(0.1, 2.0, n))
        calls = np.zeros(n)
        puts = np.zeros(n)

        def body(lo: int, hi: int) -> None:
            batch = OptionBatch(
                spot=opts.spot[lo:hi], strike=opts.strike[lo:hi],
                rate=opts.rate[lo:hi], volatility=opts.volatility[lo:hi],
                expiry=opts.expiry[lo:hi])
            calls[lo:hi], puts[lo:hi] = black_scholes_price(batch)

        kernel = Kernel(name="bs-real", cost=self.cost_model(), cpu_fn=body)
        kernel.options = opts      # type: ignore[attr-defined]
        kernel.calls = calls       # type: ignore[attr-defined]
        kernel.puts = puts         # type: ignore[attr-defined]
        return kernel


@dataclass(frozen=True)
class OptionBatch:
    """A batch of European options (arrays of equal length)."""

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    expiry: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.spot)
        for field_name in ("strike", "rate", "volatility", "expiry"):
            if len(getattr(self, field_name)) != n:
                raise WorkloadError("option arrays must have equal length")
        if (self.volatility <= 0).any() or (self.expiry <= 0).any():
            raise WorkloadError("volatility and expiry must be positive")


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (the PARSEC kernel's approach,
    minus its polynomial approximation)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def black_scholes_price(opts: OptionBatch) -> "tuple[np.ndarray, np.ndarray]":
    """(call, put) prices for a batch of European options."""
    sqrt_t = np.sqrt(opts.expiry)
    d1 = (np.log(opts.spot / opts.strike)
          + (opts.rate + 0.5 * opts.volatility ** 2) * opts.expiry) \
        / (opts.volatility * sqrt_t)
    d2 = d1 - opts.volatility * sqrt_t
    discount = np.exp(-opts.rate * opts.expiry)
    call = opts.spot * _norm_cdf(d1) - opts.strike * discount * _norm_cdf(d2)
    put = opts.strike * discount * _norm_cdf(-d2) - opts.spot * _norm_cdf(-d1)
    return call, put
