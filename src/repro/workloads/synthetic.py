"""Synthetic workload generation - testing schedulers beyond Table 1.

The paper evaluates twelve hand-picked benchmarks.  A scheduler that
claims to be black-box should also hold up on workloads nobody tuned
it for; :func:`generate_workload` draws random-but-plausible
data-parallel applications from a seeded distribution spanning the
whole taxonomy:

* compute- vs memory-bound (miss ratios straddling the 0.33 threshold),
* regular vs irregular (cost-field CV and correlation length),
* CPU- vs GPU-leaning device efficiencies,
* single long kernels vs many short launches.

Downstream users can use the same generator to stress their own
scheduler variants (see ``bench_extension_synthetic_suite.py``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload


class SyntheticWorkload(Workload):
    """A generated data-parallel application."""

    regular = False
    tablet_supported = True

    def __init__(self, name: str, cost: KernelCostModel,
                 invocation_items: List[float]) -> None:
        if not invocation_items:
            raise WorkloadError("synthetic workload needs invocations")
        self.name = name
        self.abbrev = name
        self.regular = cost.item_cost_cv <= 0.2
        self.input_desktop = (f"{sum(invocation_items):.3g} items over "
                              f"{len(invocation_items)} launches")
        self.input_tablet = self.input_desktop
        self._cost = cost
        self._invocations = [InvocationSpec(n_items=n)
                             for n in invocation_items]

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        return self._cost

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        return list(self._invocations)

    def validate(self) -> None:
        """Synthetic workloads have no reference algorithm; validity
        means a well-formed cost model and invocation list, which the
        constructors enforce."""


def generate_workload(seed: int,
                      rng: Optional[np.random.Generator] = None
                      ) -> SyntheticWorkload:
    """Draw one synthetic workload; deterministic per seed."""
    rng = rng or np.random.default_rng(0xBEEF + seed)

    memory_bound = bool(rng.random() < 0.5)
    irregular = bool(rng.random() < 0.5)
    # Device lean: log-uniform GPU/CPU effective ratio in [0.5, 4].
    lean = float(np.exp(rng.uniform(np.log(0.5), np.log(4.0))))

    instructions = float(rng.uniform(100.0, 3000.0))
    if memory_bound:
        loadstore = float(rng.uniform(0.15, 0.3))
        miss = float(rng.uniform(0.34, 0.5))
        cpu_eff = float(rng.uniform(0.01, 0.06))  # latency-bound
    else:
        loadstore = float(rng.uniform(0.1, 0.35))
        miss = float(rng.uniform(0.0, 0.05))
        cpu_eff = float(rng.uniform(0.2, 1.0))

    divergence = float(rng.uniform(0.2, 0.5)) if irregular else \
        float(rng.uniform(0.0, 0.1))
    expansion = float(rng.uniform(1.0, 1.4))
    # Desktop peak GPU/CPU instruction-rate ratio is ~2.7; solve the
    # SIMD efficiency that realizes the drawn lean.
    base_ratio = 2.69
    gpu_eff = cpu_eff * lean * expansion / (base_ratio * (1.0 - divergence))
    gpu_eff = float(min(max(gpu_eff, 0.001), 1.0))

    cost = KernelCostModel(
        name=f"syn-{seed}",
        instructions_per_item=instructions,
        loadstore_fraction=loadstore,
        l3_miss_rate=miss,
        cpu_simd_efficiency=cpu_eff,
        gpu_simd_efficiency=gpu_eff,
        gpu_divergence=divergence,
        gpu_instruction_expansion=expansion,
        gpu_traffic_factor=float(rng.uniform(0.6, 1.0)),
        item_cost_cv=float(rng.uniform(0.4, 1.2)) if irregular else 0.0,
        cost_profile_scale=float(rng.uniform(0.05, 0.3)),
        rng_tag=1000 + seed,
    )

    # Size the application to a 0.3-3 s CPU-alone runtime on the
    # desktop (so sweeps stay cheap but PCU transients amortize).
    cpu_rate = 6.24e10 * cpu_eff / instructions
    total_items = cpu_rate * float(rng.uniform(0.3, 3.0))
    many_launches = bool(rng.random() < 0.4)
    if many_launches:
        n_launches = int(rng.integers(20, 400))
        shares = rng.dirichlet(np.full(n_launches, 2.0))
        items = [max(float(s * total_items), 1.0) for s in shares]
    else:
        items = [total_items]

    return SyntheticWorkload(name=f"SYN{seed}", cost=cost,
                             invocation_items=items)


def generate_suite(count: int, seed: int = 0) -> List[SyntheticWorkload]:
    """A reproducible suite of ``count`` synthetic workloads."""
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = np.random.default_rng(0xFEED + seed)
    return [generate_workload(seed * 1000 + i, rng) for i in range(count)]
