"""The eight power-characterization micro-benchmarks (Section 2).

They form the cross-product of {compute-bound, memory-bound} x
{CPU short, CPU long} x {GPU short, GPU long}:

* the **compute-bound** probe repeatedly performs floating-point
  multiply-add operations on register-resident data (near-zero LLC
  misses);
* the **memory-bound** probe randomly updates memory locations in a
  large array through precomputed random indices (high LLC miss rate);
* **CPU-biased** cells (CPU short, GPU long) use a kernel variant that
  maps poorly onto the GPU (heavy divergence/serialization), as the
  paper describes for workloads that "perform much faster on the CPU
  than the GPU";
* **GPU-biased** cells (CPU long, GPU short) use a variant whose CPU
  code is scalar and branchy (low effective IPC) while the GPU version
  streams well.

Each micro-benchmark also carries a real numpy body so the examples
and tests can execute it for real; the characterization sweep itself
only needs the cost model.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.categories import (
    Boundedness,
    DeviceDuration,
    WorkloadCategory,
)
from repro.core.characterization import CharacterizationMicrobench
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel

#: CPU-alone duration targets used during characterization.
SHORT_CPU_TARGET_S = 0.045
LONG_CPU_TARGET_S = 1.2
#: The GPU-biased (CPU-long) cells use a shorter CPU target so the
#: GPU side lands safely under the 100 ms threshold.
GPU_BIASED_CPU_TARGET_S = 1.0

_S = DeviceDuration.SHORT
_L = DeviceDuration.LONG


def _compute_cost(name: str, cpu_eff: float, gpu_eff: float) -> KernelCostModel:
    """FMA-loop probe: all arithmetic, no LLC traffic."""
    return KernelCostModel(
        name=name,
        instructions_per_item=2000.0,
        loadstore_fraction=0.2,
        l3_miss_rate=0.0,
        cpu_simd_efficiency=cpu_eff,
        gpu_simd_efficiency=gpu_eff,
    )


def _memory_cost(name: str, cpu_eff: float, gpu_eff: float) -> KernelCostModel:
    """Random-update probe: ~81 LLC misses per item."""
    return KernelCostModel(
        name=name,
        instructions_per_item=300.0,
        loadstore_fraction=0.45,
        l3_miss_rate=0.6,
        cpu_simd_efficiency=cpu_eff,
        gpu_simd_efficiency=gpu_eff,
    )


def standard_microbenches() -> List[CharacterizationMicrobench]:
    """The eight probes, one per workload category.

    Device-duration bias is encoded in the per-device efficiency of
    the kernel variant; the iteration count is calibrated by the
    characterizer to hit ``cpu_target_s``.
    """
    benches: List[CharacterizationMicrobench] = []

    def add(bound: Boundedness, cpu_dur: DeviceDuration,
            gpu_dur: DeviceDuration, cost: KernelCostModel,
            cpu_target: float) -> None:
        # Short-category probes repeat back-to-back (how short kernels
        # occur in applications); long probes run once.
        short = (cpu_dur is DeviceDuration.SHORT
                 or gpu_dur is DeviceDuration.SHORT)
        benches.append(CharacterizationMicrobench(
            category=WorkloadCategory(bound, cpu_dur, gpu_dur),
            cost=cost, cpu_target_s=cpu_target,
            repetitions=20 if short else 1))

    # -- compute-bound cells -------------------------------------------------
    add(Boundedness.COMPUTE, _S, _S,
        _compute_cost("ub-compute-ss", cpu_eff=1.0, gpu_eff=1.0),
        SHORT_CPU_TARGET_S)
    add(Boundedness.COMPUTE, _L, _L,
        _compute_cost("ub-compute-ll", cpu_eff=1.0, gpu_eff=1.0),
        LONG_CPU_TARGET_S)
    add(Boundedness.COMPUTE, _S, _L,
        _compute_cost("ub-compute-sl", cpu_eff=1.0, gpu_eff=0.1),
        SHORT_CPU_TARGET_S)
    add(Boundedness.COMPUTE, _L, _S,
        _compute_cost("ub-compute-ls", cpu_eff=0.08, gpu_eff=1.0),
        GPU_BIASED_CPU_TARGET_S)

    # -- memory-bound cells --------------------------------------------------
    add(Boundedness.MEMORY, _S, _S,
        _memory_cost("ub-memory-ss", cpu_eff=1.0, gpu_eff=1.0),
        SHORT_CPU_TARGET_S)
    add(Boundedness.MEMORY, _L, _L,
        _memory_cost("ub-memory-ll", cpu_eff=1.0, gpu_eff=1.0),
        LONG_CPU_TARGET_S)
    add(Boundedness.MEMORY, _S, _L,
        _memory_cost("ub-memory-sl", cpu_eff=1.0, gpu_eff=0.003),
        SHORT_CPU_TARGET_S)
    add(Boundedness.MEMORY, _L, _S,
        _memory_cost("ub-memory-ls", cpu_eff=0.0012, gpu_eff=1.0),
        GPU_BIASED_CPU_TARGET_S)

    return benches


def microbench_for(category: WorkloadCategory) -> CharacterizationMicrobench:
    """Look up the standard probe for a category."""
    for bench in standard_microbenches():
        if bench.category == category:
            return bench
    raise KeyError(str(category))


# -- real executable bodies (for tests and examples) ----------------------------

class ComputeProbe:
    """Executable FMA probe: out[i] accumulates repeated multiply-adds."""

    def __init__(self, n_items: int, fma_per_item: int = 64) -> None:
        self.out = np.zeros(n_items)
        self.fma_per_item = fma_per_item

    def body(self, lo: int, hi: int) -> None:
        x = np.full(hi - lo, 1.000001)
        acc = np.zeros(hi - lo)
        for _ in range(self.fma_per_item):
            acc = acc * x + x
        self.out[lo:hi] = acc

    def make_kernel(self, cost: KernelCostModel) -> Kernel:
        return Kernel(name=cost.name, cost=cost, cpu_fn=self.body)


class MemoryProbe:
    """Executable random-update probe over a scatter index array."""

    def __init__(self, n_items: int, table_size: int = 1 << 20,
                 seed: int = 1) -> None:
        rng = np.random.default_rng(seed)
        self.indices = rng.integers(0, table_size, size=n_items)
        self.table = np.zeros(table_size)

    def body(self, lo: int, hi: int) -> None:
        idx = self.indices[lo:hi]
        np.add.at(self.table, idx, 1.0)

    def make_kernel(self, cost: KernelCostModel) -> Kernel:
        return Kernel(name=cost.name, cost=cost, cpu_fn=self.body)
