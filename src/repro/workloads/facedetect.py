"""Face Detect (FD) - Viola-Jones-style cascade over a photograph.

Paper input: the 3000x2171 Solvay-1927 conference photo, 132 kernel
invocations (cascade stages across detection scales).  Compute-bound
and irregular: each window runs a data-dependent number of cascade
stages.  This is the paper's **CPU-biased** workload: the cascade's
early-exit control flow serializes SIMT lanes so badly that the GPU is
several times slower, and Section 5 highlights that EAS correctly picks
100% CPU execution for it while GPU-alone "suffers significantly".

The real implementation is a miniature integral-image box-feature
cascade that must locate a synthetic bright square.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_LAUNCHES = 132
#: Detection windows per stage launch (3000x2171 image, strided scan).
_DESKTOP_WINDOWS_PER_LAUNCH = 6.0e4


class FaceDetect(Workload):
    """Cascade window classification; CPU-biased and compute-bound."""

    name = "Face Detect"
    abbrev = "FD"
    regular = False
    tablet_supported = False
    input_desktop = "3000 by 2171 Solvay-1927"
    expected_compute_bound = True
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        if tablet:
            raise WorkloadError("FD does not build on the 32-bit tablet")
        # Box-feature sums hit the integral image (cache-resident at
        # window granularity -> compute-bound); per-window early exits
        # devastate SIMT efficiency.
        return KernelCostModel(
            name="fd-cascade",
            instructions_per_item=800.0,
            loadstore_fraction=0.30,
            l3_miss_rate=0.005,
            cpu_simd_efficiency=1.0,
            gpu_simd_efficiency=0.02,
            gpu_divergence=0.50,
            gpu_instruction_expansion=1.4,
            item_cost_cv=0.6,
            cost_profile_scale=0.12,
            rng_tag=5,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            raise WorkloadError("FD does not build on the 32-bit tablet")
        return [InvocationSpec(n_items=_DESKTOP_WINDOWS_PER_LAUNCH)
                for _ in range(_DESKTOP_LAUNCHES)]

    def validate(self) -> None:
        """The mini cascade must localize a synthetic bright square."""
        image = np.full((96, 128), 0.2)
        true_xy = (40, 72)  # row, col of the 12x12 bright square
        image[true_xy[0]:true_xy[0] + 12, true_xy[1]:true_xy[1] + 12] = 0.9
        rng = np.random.default_rng(5)
        image += rng.normal(0.0, 0.02, size=image.shape)

        detections = detect_bright_squares(image, window=12, threshold=0.45)
        if not detections:
            raise WorkloadError("cascade found no detections")
        best = max(detections, key=lambda d: d[2])
        if abs(best[0] - true_xy[0]) > 3 or abs(best[1] - true_xy[1]) > 3:
            raise WorkloadError(
                f"cascade localized {best[:2]}, expected near {true_xy}")
        # A blank image must produce no detections (stage-1 rejection).
        blank = np.full((96, 128), 0.2)
        if detect_bright_squares(blank, window=12, threshold=0.45):
            raise WorkloadError("cascade fired on a blank image")


def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero border row/column."""
    ii = np.zeros((image.shape[0] + 1, image.shape[1] + 1))
    ii[1:, 1:] = image.cumsum(axis=0).cumsum(axis=1)
    return ii


def box_sum(ii: np.ndarray, r: int, c: int, h: int, w: int) -> float:
    """Sum of image[r:r+h, c:c+w] in O(1) via the integral image."""
    return float(ii[r + h, c + w] - ii[r, c + w] - ii[r + h, c] + ii[r, c])


def detect_bright_squares(image: np.ndarray, window: int,
                          threshold: float) -> List[Tuple[int, int, float]]:
    """Two-stage cascade: cheap mean test, then center-surround contrast.

    Returns (row, col, score) for windows passing both stages - the
    same early-exit structure that makes the real FD GPU-hostile.
    """
    if window < 4:
        raise WorkloadError("window too small for the cascade features")
    ii = integral_image(image)
    area = float(window * window)
    inner = window // 2
    inner_area = float(inner * inner)
    offset = (window - inner) // 2
    detections: List[Tuple[int, int, float]] = []
    for r in range(0, image.shape[0] - window, 2):
        for c in range(0, image.shape[1] - window, 2):
            # Stage 1: mean intensity (rejects almost everything).
            mean = box_sum(ii, r, c, window, window) / area
            if mean < threshold:
                continue
            # Stage 2: center-surround contrast.
            center = box_sum(ii, r + offset, c + offset, inner, inner) / inner_area
            surround = (box_sum(ii, r, c, window, window) - center * inner_area)
            surround /= (area - inner_area)
            score = center - 0.5 * surround
            if score > threshold * 0.8:
                detections.append((r, c, score))
    return detections
