"""Workload base class.

A workload couples the paper-scale *cost model* (what the simulator
times) with a reduced-scale *real implementation* (what the tests
validate).  See DESIGN.md, decision 2: simulated timing is O(simulated
seconds) regardless of the paper's input size, while algorithmic
correctness is checked at laptop scale against reference
implementations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel


@dataclass(frozen=True)
class InvocationSpec:
    """One kernel invocation: its iteration count."""

    n_items: float

    def __post_init__(self) -> None:
        if self.n_items <= 0:
            raise WorkloadError("invocation must have positive items")


@dataclass(frozen=True)
class Table1Row:
    """The workload's row in the paper's Table 1 (expected values)."""

    name: str
    abbrev: str
    input_desktop: str
    input_tablet: str
    num_invocations: int
    regular: bool
    compute_bound: bool
    cpu_short: bool
    gpu_short: bool


class Workload(abc.ABC):
    """One benchmark application with a single data-parallel kernel."""

    #: Full name and the paper's abbreviation.
    name: str = ""
    abbrev: str = ""
    #: Regular (R) vs irregular (IR) per the paper's classification.
    regular: bool = True
    #: Whether the 32-bit tablet build supports this workload.
    tablet_supported: bool = True
    #: Input descriptions for Table 1.
    input_desktop: str = ""
    input_tablet: str = "N/A"
    #: Expected Table-1 characterization (desktop).
    expected_compute_bound: bool = True
    expected_cpu_short: bool = False
    expected_gpu_short: bool = False

    # -- paper-scale simulation interface -----------------------------------------

    @abc.abstractmethod
    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        """Cost of one kernel iteration at the platform's input scale."""

    @abc.abstractmethod
    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        """Iteration counts of every kernel invocation, in order."""

    def make_kernel(self, tablet: bool = False) -> Kernel:
        """Kernel used by the evaluation harness (no real body needed)."""
        return Kernel(name=self.abbrev, cost=self.cost_model(tablet=tablet))

    @property
    def num_invocations(self) -> int:
        return len(self.invocations(tablet=False))

    def total_items(self, tablet: bool = False) -> float:
        return sum(inv.n_items for inv in self.invocations(tablet=tablet))

    # -- real-computation interface -----------------------------------------------

    @abc.abstractmethod
    def validate(self) -> None:
        """Run the real algorithm at reduced scale and assert correctness.

        Raises (AssertionError or WorkloadError) on any mismatch with
        the reference result.  Called by the test suite and examples.
        """

    def make_executable_kernel(self) -> Optional[Kernel]:
        """A kernel with a real body at reduced scale, when available."""
        return None

    # -- reporting ------------------------------------------------------------------

    def table1_row(self) -> Table1Row:
        return Table1Row(
            name=self.name,
            abbrev=self.abbrev,
            input_desktop=self.input_desktop,
            input_tablet=self.input_tablet if self.tablet_supported else "N/A",
            num_invocations=self.num_invocations,
            regular=self.regular,
            compute_bound=self.expected_compute_bound,
            cpu_short=self.expected_cpu_short,
            gpu_short=self.expected_gpu_short,
        )

    def __repr__(self) -> str:
        return f"<Workload {self.abbrev} ({self.name})>"
