"""N-Body (NB) - direct all-pairs gravitational simulation.

Paper input: 4096 bodies for 101 steps on the desktop (1024 on the
tablet); one kernel invocation per step.  Regular and compute-bound.
Table 1 classifies it CPU-Long / GPU-Short: the O(N) inner loop per
body is branch-free streaming math that the 2240-lane GPU demolishes,
while the scalar CPU build grinds - the strongest GPU bias in the
suite.

The real implementation advances a leapfrog integrator; validation
checks force symmetry (momentum conservation) and energy drift.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_BODIES = 4096
_TABLET_BODIES = 1024
_STEPS = 101


class NBody(Workload):
    """All-pairs force kernel, one invocation per time step."""

    name = "N-Body"
    abbrev = "NB"
    regular = True
    tablet_supported = True
    input_desktop = "4096 bodies"
    input_tablet = "1024 bodies"
    expected_compute_bound = True
    expected_cpu_short = False
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        bodies = _TABLET_BODIES if tablet else _DESKTOP_BODIES
        # One item = one body: an N-length interaction loop.  The CPU
        # build is scalar with a reciprocal sqrt per interaction
        # (low effective IPC); the GPU build streams at full SIMT
        # width.
        return KernelCostModel(
            name="nb-bodies",
            instructions_per_item=10.0 * bodies,
            loadstore_fraction=0.20,
            l3_miss_rate=0.002,
            cpu_simd_efficiency=0.020,
            gpu_simd_efficiency=0.90,
            gpu_divergence=0.0,
            item_cost_cv=0.0,
            rng_tag=10,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        bodies = _TABLET_BODIES if tablet else _DESKTOP_BODIES
        return [InvocationSpec(n_items=float(bodies)) for _ in range(_STEPS)]

    def validate(self) -> None:
        """Momentum conservation and bounded energy drift."""
        rng = np.random.default_rng(41)
        n = 128
        pos = rng.uniform(-1.0, 1.0, size=(n, 3))
        vel = rng.uniform(-0.05, 0.05, size=(n, 3))
        mass = rng.uniform(0.5, 1.5, size=n)
        vel -= (mass[:, None] * vel).sum(axis=0) / mass.sum()  # zero net momentum

        forces = nbody_forces(pos, mass)
        net = forces.sum(axis=0)
        if not np.allclose(net, 0.0, atol=1e-9):
            raise WorkloadError(f"net force {net} violates Newton's third law")

        e0 = nbody_energy(pos, vel, mass)
        dt = 1e-3
        for _ in range(50):
            pos, vel = leapfrog_step(pos, vel, mass, dt)
        e1 = nbody_energy(pos, vel, mass)
        drift = abs(e1 - e0) / abs(e0)
        if drift > 0.02:
            raise WorkloadError(f"energy drift {drift:.3%} exceeds 2%")

    def make_executable_kernel(self) -> Kernel:
        """A real force kernel over 512 bodies (item = one body)."""
        rng = np.random.default_rng(55)
        n = 512
        pos = rng.uniform(-1.0, 1.0, size=(n, 3))
        mass = rng.uniform(0.5, 1.5, size=n)
        forces = np.zeros((n, 3))
        softening = 1e-2

        def body(lo: int, hi: int) -> None:
            delta = pos[None, :, :] - pos[lo:hi, None, :]
            r2 = (delta ** 2).sum(axis=2) + softening ** 2
            for i in range(lo, hi):
                r2[i - lo, i] = np.inf
            inv_r3 = r2 ** -1.5
            contrib = delta * (mass[None, :] * inv_r3)[:, :, None]
            forces[lo:hi] = mass[lo:hi, None] * contrib.sum(axis=1)

        kernel = Kernel(name="nb-real", cost=self.cost_model(), cpu_fn=body)
        kernel.positions = pos    # type: ignore[attr-defined]
        kernel.masses = mass      # type: ignore[attr-defined]
        kernel.forces = forces    # type: ignore[attr-defined]
        return kernel


def nbody_forces(pos: np.ndarray, mass: np.ndarray,
                 softening: float = 1e-2) -> np.ndarray:
    """Direct all-pairs gravitational forces (G = 1)."""
    delta = pos[None, :, :] - pos[:, None, :]
    r2 = (delta ** 2).sum(axis=2) + softening ** 2
    np.fill_diagonal(r2, np.inf)
    inv_r3 = r2 ** -1.5
    contrib = delta * (mass[None, :] * inv_r3)[:, :, None]
    return mass[:, None] * contrib.sum(axis=1)


def nbody_energy(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                 softening: float = 1e-2) -> float:
    """Total (kinetic + potential) energy of the system."""
    kinetic = 0.5 * (mass * (vel ** 2).sum(axis=1)).sum()
    delta = pos[None, :, :] - pos[:, None, :]
    r = np.sqrt((delta ** 2).sum(axis=2) + softening ** 2)
    np.fill_diagonal(r, np.inf)
    potential = -0.5 * (mass[:, None] * mass[None, :] / r).sum()
    return float(kinetic + potential)


def leapfrog_step(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                  dt: float) -> "tuple[np.ndarray, np.ndarray]":
    """One kick-drift-kick leapfrog step (symplectic)."""
    acc = nbody_forces(pos, mass) / mass[:, None]
    vel_half = vel + 0.5 * dt * acc
    new_pos = pos + dt * vel_half
    new_acc = nbody_forces(new_pos, mass) / mass[:, None]
    new_vel = vel_half + 0.5 * dt * new_acc
    return new_pos, new_vel
