"""Mandelbrot (MB) - escape-time fractal rendering.

Paper input: a 7680x6144 image (47.2M pixels), single kernel
invocation.  Irregular: per-pixel iteration counts vary by orders of
magnitude and cluster spatially (tiles inside the set run to the
iteration cap), which is exactly the long-range cost structure that
defeats prefix-based online profiling.  The paper's Table 1 classifies
it memory-bound on their framed/tiled implementation; the cost model
follows that classification.

The real implementation computes escape counts with numpy and verifies
mathematically known membership (cardioid interior, |c| > 2 exterior).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.runtime.kernel import Kernel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_PIXELS = 7680.0 * 6144.0
_TABLET_PIXELS = 7680.0 * 6144.0  # the paper uses the same image


class Mandelbrot(Workload):
    """Escape-time iteration over an image grid."""

    name = "Mandelbrot"
    abbrev = "MB"
    regular = False
    tablet_supported = True
    input_desktop = "image 7680x6144"
    input_tablet = "image 7680x6144"
    expected_compute_bound = False
    expected_cpu_short = False
    expected_gpu_short = False

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        # The paper's framed/tiled build streams tile state per pixel
        # (Table 1 classifies MB memory-bound); escape-time divergence
        # costs the GPU lanes, coalesced tile access wins some back.
        return KernelCostModel(
            name="mb-pixels",
            instructions_per_item=400.0,
            loadstore_fraction=0.22,
            l3_miss_rate=0.34,
            cpu_simd_efficiency=0.040,
            gpu_simd_efficiency=0.0653,
            gpu_divergence=0.45,
            gpu_instruction_expansion=1.1,
            gpu_traffic_factor=0.45,
            item_cost_cv=0.7,
            cost_profile_scale=0.15,
            rng_tag=6,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        pixels = _TABLET_PIXELS if tablet else _DESKTOP_PIXELS
        return [InvocationSpec(n_items=pixels)]

    def validate(self) -> None:
        """Escape counts must match known Mandelbrot-set membership."""
        width, height, max_iter = 128, 96, 64
        counts = render_escape_counts(width, height, max_iter)
        if counts.shape != (height, width):
            raise WorkloadError("unexpected image shape")

        def count_at(re: float, im: float) -> int:
            col = int((re + 2.5) / 3.5 * (width - 1))
            row = int((im + 1.25) / 2.5 * (height - 1))
            return int(counts[row, col])

        # c = 0 and c = -1 are inside the set: never escape.
        if count_at(0.0, 0.0) != max_iter or count_at(-1.0, 0.0) != max_iter:
            raise WorkloadError("interior points escaped")
        # c = 1 escapes quickly (z: 0, 1, 2, 5 -> |z| > 2 at iter 3).
        if not 1 <= count_at(1.0, 0.0) <= 5:
            raise WorkloadError("c=1 did not escape promptly")
        # Iteration counts are irregular: high variance across pixels.
        cv = counts.std() / counts.mean()
        if cv < 0.5:
            raise WorkloadError(f"escape counts suspiciously uniform (cv={cv:.2f})")

    def make_executable_kernel(self) -> Kernel:
        """A real 256x192 rendering kernel for examples/tests."""
        width, height, max_iter = 256, 192, 96
        out = np.zeros(width * height, dtype=np.int64)

        def body(lo: int, hi: int) -> None:
            idx = np.arange(lo, hi)
            rows, cols = idx // width, idx % width
            c = (-2.5 + 3.5 * cols / (width - 1)
                 + 1j * (-1.25 + 2.5 * rows / (height - 1)))
            out[lo:hi] = _escape_counts(c, max_iter)

        kernel = Kernel(name="mb-real", cost=self.cost_model(), cpu_fn=body)
        kernel.output = out  # type: ignore[attr-defined]
        return kernel


def _escape_counts(c: np.ndarray, max_iter: int) -> np.ndarray:
    """Vectorized escape-time iteration for an array of c values."""
    z = np.zeros_like(c)
    counts = np.full(c.shape, max_iter, dtype=np.int64)
    alive = np.ones(c.shape, dtype=bool)
    for i in range(max_iter):
        z[alive] = z[alive] * z[alive] + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        counts[escaped] = i
        alive &= ~escaped
        if not alive.any():
            break
    return counts


def render_escape_counts(width: int, height: int, max_iter: int) -> np.ndarray:
    """Full-frame escape counts over [-2.5, 1] x [-1.25, 1.25]."""
    if width < 2 or height < 2:
        raise WorkloadError("image too small")
    re = np.linspace(-2.5, 1.0, width)
    im = np.linspace(-1.25, 1.25, height)
    c = re[None, :] + 1j * im[:, None]
    return _escape_counts(c, max_iter)
