"""Ray Tracer (RT) - sphere-scene ray casting.

Paper input: 256 spheres, 3 materials, 5 lights (225 spheres on the
tablet); one long kernel invocation over the image pixels.  Regular and
compute-bound: every pixel tests the ray against every sphere, so the
work per pixel is uniform even though shading differs.

The real implementation is a miniature diffuse ray tracer; validation
checks known hit/miss geometry and shading ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_PIXELS = 1920.0 * 1080.0
_TABLET_PIXELS = 1280.0 * 720.0
_DESKTOP_SPHERES = 256
_TABLET_SPHERES = 225


class RayTracer(Workload):
    """Primary-ray sphere intersection and diffuse shading."""

    name = "Ray Tracer"
    abbrev = "RT"
    regular = True
    tablet_supported = True
    input_desktop = "sphere=256,material=3,light=5"
    input_tablet = "sphere=225,material=3,light=5"
    expected_compute_bound = True
    expected_cpu_short = False
    expected_gpu_short = False

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        spheres = _TABLET_SPHERES if tablet else _DESKTOP_SPHERES
        # One item = one pixel: ~20 instructions per sphere test plus
        # shading for 5 lights.
        return KernelCostModel(
            name="rt-pixels",
            instructions_per_item=20.0 * spheres + 900.0,
            loadstore_fraction=0.25,
            l3_miss_rate=0.004,
            cpu_simd_efficiency=0.60,
            gpu_simd_efficiency=0.70,
            gpu_divergence=0.25,
            gpu_instruction_expansion=1.2,
            item_cost_cv=0.15,
            cost_profile_scale=0.20,
            rng_tag=11,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        pixels = _TABLET_PIXELS if tablet else _DESKTOP_PIXELS
        return [InvocationSpec(n_items=pixels)]

    def validate(self) -> None:
        """A centered sphere must shade the image center, not corners."""
        scene = Scene(
            spheres=[Sphere(center=np.array([0.0, 0.0, 5.0]), radius=1.0,
                            albedo=0.9)],
            lights=[np.array([5.0, 5.0, 0.0]), np.array([-5.0, 5.0, 0.0])],
        )
        width = height = 65
        image = render(scene, width, height, fov_deg=60.0)
        center = image[height // 2, width // 2]
        corner = image[0, 0]
        if center <= 0.0:
            raise WorkloadError("primary ray through the sphere missed it")
        if corner != 0.0:
            raise WorkloadError("corner ray unexpectedly hit the sphere")
        if not (0.0 <= image.min() and image.max() <= 1.0):
            raise WorkloadError("shading left [0, 1]")
        # Two lights from +y: the sphere's upper half is brighter.
        upper = image[:height // 2].sum()
        lower = image[height // 2 + 1:].sum()
        if upper <= lower:
            raise WorkloadError("lighting direction not reflected in shading")

    def make_executable_kernel(self) -> Kernel:
        """A real rendering kernel over a 64x48 image (item = one row)."""
        rng = np.random.default_rng(66)
        spheres = [Sphere(center=np.array([x, y, 6.0]), radius=0.5,
                          albedo=0.8)
                   for x, y in rng.uniform(-2.0, 2.0, size=(6, 2))]
        scene = Scene(spheres=spheres,
                      lights=[np.array([4.0, 6.0, 0.0])])
        width, height = 64, 48
        image = np.zeros((height, width))

        def body(lo: int, hi: int) -> None:
            image[lo:hi] = render(scene, width, height, row_lo=lo, row_hi=hi)

        kernel = Kernel(name="rt-real", cost=self.cost_model(), cpu_fn=body)
        kernel.scene = scene      # type: ignore[attr-defined]
        kernel.image = image      # type: ignore[attr-defined]
        kernel.shape = (height, width)  # type: ignore[attr-defined]
        return kernel


@dataclass(frozen=True)
class Sphere:
    center: np.ndarray
    radius: float
    albedo: float

    def intersect(self, origin: np.ndarray, direction: np.ndarray) -> Optional[float]:
        """Nearest positive ray parameter t, or None."""
        oc = origin - self.center
        b = 2.0 * float(np.dot(oc, direction))
        c = float(np.dot(oc, oc)) - self.radius ** 2
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return None
        sqrt_disc = float(np.sqrt(disc))
        for t in ((-b - sqrt_disc) / 2.0, (-b + sqrt_disc) / 2.0):
            if t > 1e-6:
                return t
        return None


@dataclass(frozen=True)
class Scene:
    spheres: List[Sphere]
    lights: List[np.ndarray]


def trace_ray(scene: Scene, origin: np.ndarray, direction: np.ndarray) -> float:
    """Diffuse intensity along one primary ray (0 = background)."""
    nearest_t = np.inf
    nearest: Optional[Sphere] = None
    for sphere in scene.spheres:
        t = sphere.intersect(origin, direction)
        if t is not None and t < nearest_t:
            nearest_t = t
            nearest = sphere
    if nearest is None:
        return 0.0
    hit = origin + nearest_t * direction
    normal = (hit - nearest.center) / nearest.radius
    intensity = 0.05  # ambient
    for light in scene.lights:
        to_light = light - hit
        to_light = to_light / np.linalg.norm(to_light)
        intensity += nearest.albedo * max(0.0, float(np.dot(normal, to_light)))
    return min(intensity, 1.0)


def render(scene: Scene, width: int, height: int, fov_deg: float = 60.0,
           row_lo: int = 0, row_hi: Optional[int] = None) -> np.ndarray:
    """Render rows [row_lo, row_hi) of the image; camera at the origin
    looking down +z."""
    if row_hi is None:
        row_hi = height
    if not 0 <= row_lo <= row_hi <= height:
        raise WorkloadError("row range out of bounds")
    scale = float(np.tan(np.radians(fov_deg / 2.0)))
    aspect = width / height
    origin = np.zeros(3)
    image = np.zeros((row_hi - row_lo, width))
    for r in range(row_lo, row_hi):
        ndc_y = (1.0 - 2.0 * (r + 0.5) / height) * scale
        for c in range(width):
            ndc_x = (2.0 * (c + 0.5) / width - 1.0) * scale * aspect
            direction = np.array([ndc_x, ndc_y, 1.0])
            direction = direction / np.linalg.norm(direction)
            image[r - row_lo, c] = trace_ray(scene, origin, direction)
    return image
