"""Breadth-First Search (BFS) - irregular, memory-bound, short kernels.

Paper input: the W-USA road network (|V| = 6.2M), 1748 kernel
invocations - one per BFS level, each processing one frontier.  Road
networks have huge diameter, so frontiers are numerous and individually
small; this is the prototypical "short-burst" workload whose GPU
launches interact badly with the PCU's sampling (Section 2).

The real implementation is the level-synchronous BFS of
:mod:`repro.workloads.roadnet`, validated against networkx.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.roadnet import (
    bfs_levels,
    rescale_profile,
    small_bfs_profile,
    small_road_network,
)

#: Paper-scale totals: every vertex is visited exactly once.
_DESKTOP_VERTICES = 6.2e6
_DESKTOP_LAUNCHES = 1748


class BreadthFirstSearch(Workload):
    """BFS over a road network, one kernel launch per level."""

    name = "Breadth first search"
    abbrev = "BFS"
    regular = False
    tablet_supported = False
    input_desktop = "W-USA (|V|=6.2M, |E|=1.5M)"
    expected_compute_bound = False
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        if tablet:
            raise WorkloadError("BFS does not build on the 32-bit tablet")
        # Per frontier vertex: pop, scan ~4 adjacency entries, test and
        # set visited flags.  Dependent scattered loads make this
        # memory-*latency*-bound: the CPU retires a tiny fraction of
        # peak IPC waiting on LLC misses, while the GPU hides latency
        # with SIMT threads but loses lanes to frontier divergence.
        return KernelCostModel(
            name="bfs-level",
            instructions_per_item=180.0,
            loadstore_fraction=0.25,
            l3_miss_rate=0.34,
            cpu_simd_efficiency=0.008,
            gpu_simd_efficiency=0.0128,
            gpu_divergence=0.40,
            gpu_instruction_expansion=1.3,
            gpu_traffic_factor=0.75,
            item_cost_cv=0.5,
            cost_profile_scale=0.08,
            rng_tag=2,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            raise WorkloadError("BFS does not build on the 32-bit tablet")
        sizes = rescale_profile(list(small_bfs_profile()),
                                target_launches=_DESKTOP_LAUNCHES,
                                target_total=_DESKTOP_VERTICES)
        return [InvocationSpec(n_items=s) for s in sizes]

    def validate(self) -> None:
        """Check BFS levels against networkx on the small road network."""
        import networkx as nx

        graph = small_road_network()
        level, sizes = bfs_levels(graph, source=0)
        g = nx.Graph()
        for v in range(graph.num_vertices):
            for u in graph.neighbors(v):
                g.add_edge(int(v), int(u))
        reference = nx.single_source_shortest_path_length(g, 0)
        if len(reference) != graph.num_vertices:
            raise WorkloadError("small road network is not connected")
        ours = {v: int(level[v]) for v in range(graph.num_vertices)}
        mismatches = [v for v, d in reference.items() if ours[v] != d]
        if mismatches:
            raise WorkloadError(
                f"BFS levels disagree with networkx at {len(mismatches)} "
                f"vertices (first: {mismatches[0]})")
        if sum(sizes) != graph.num_vertices:
            raise WorkloadError("BFS frontiers do not cover every vertex once")
        if int(np.max(level)) + 1 != len(sizes):
            raise WorkloadError("level count disagrees with frontier count")
