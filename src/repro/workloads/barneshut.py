"""BarnesHut (BH) - hierarchical N-body force calculation.

Paper input: 1M bodies, 1 time step, a single long kernel invocation.
Irregular (tree-walk depth depends on body position) and memory-bound
(pointer chasing through the octree dominates).

The real implementation builds a 2-D quadtree and computes forces with
the theta-criterion approximation; validation compares against the
exact O(N^2) sum on a small body set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_BODIES = 1.0e6


class BarnesHut(Workload):
    """Barnes-Hut force computation, one long irregular kernel."""

    name = "BarnesHut"
    abbrev = "BH"
    regular = False
    tablet_supported = False
    input_desktop = "1M bodies, 1 step"
    expected_compute_bound = False
    expected_cpu_short = False
    expected_gpu_short = False

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        if tablet:
            raise WorkloadError("BH does not build on the 32-bit tablet")
        # Tree walk per body: dependent node fetches dominate (memory-
        # latency-bound), walk depth varies per body (irregular,
        # divergent on GPU).
        return KernelCostModel(
            name="bh-forces",
            instructions_per_item=600.0,
            loadstore_fraction=0.22,
            l3_miss_rate=0.34,
            cpu_simd_efficiency=0.012,
            gpu_simd_efficiency=0.0128,
            gpu_divergence=0.30,
            gpu_instruction_expansion=1.25,
            gpu_traffic_factor=0.60,
            item_cost_cv=0.5,
            cost_profile_scale=0.15,
            rng_tag=1,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            raise WorkloadError("BH does not build on the 32-bit tablet")
        return [InvocationSpec(n_items=_DESKTOP_BODIES)]

    def validate(self) -> None:
        """Barnes-Hut forces within 2% RMS of the exact O(N^2) sum."""
        rng = np.random.default_rng(11)
        n = 256
        pos = rng.uniform(-1.0, 1.0, size=(n, 2))
        mass = rng.uniform(0.5, 2.0, size=n)
        tree = QuadTree.build(pos, mass)
        approx = np.array([tree.force_on(pos[i], i, theta=0.4) for i in range(n)])
        exact = _exact_forces(pos, mass)
        scale = np.linalg.norm(exact, axis=1).mean()
        err = np.linalg.norm(approx - exact, axis=1).mean() / scale
        if err > 0.02:
            raise WorkloadError(f"Barnes-Hut force error {err:.3%} exceeds 2%")
        # The tree must contain every body exactly once.
        if tree.count != n:
            raise WorkloadError(f"tree holds {tree.count} bodies, expected {n}")


def _exact_forces(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Direct pairwise gravitational forces (softened, G = 1)."""
    n = len(pos)
    forces = np.zeros_like(pos)
    for i in range(n):
        d = pos - pos[i]
        r2 = (d ** 2).sum(axis=1) + 1e-9
        r2[i] = np.inf
        inv_r3 = r2 ** -1.5
        forces[i] = (d * (mass * inv_r3)[:, None]).sum(axis=0)
    return forces


@dataclass
class QuadTree:
    """A 2-D Barnes-Hut quadtree node."""

    cx: float
    cy: float
    half: float
    com: np.ndarray          # center of mass (2,)
    mass: float
    count: int
    body_index: Optional[int]         # leaf payload
    children: "Optional[List[Optional[QuadTree]]]"

    @classmethod
    def build(cls, pos: np.ndarray, mass: np.ndarray) -> "QuadTree":
        if len(pos) == 0:
            raise WorkloadError("cannot build a tree over zero bodies")
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        center = (lo + hi) / 2.0
        half = float(max(hi - lo) / 2.0) + 1e-9
        root = cls.empty(center[0], center[1], half)
        for i in range(len(pos)):
            root.insert(pos, mass, i)
        root._accumulate(pos, mass)
        return root

    @classmethod
    def empty(cls, cx: float, cy: float, half: float) -> "QuadTree":
        return cls(cx=cx, cy=cy, half=half, com=np.zeros(2), mass=0.0,
                   count=0, body_index=None, children=None)

    def _quadrant(self, p: np.ndarray) -> int:
        return (1 if p[0] >= self.cx else 0) | (2 if p[1] >= self.cy else 0)

    def _child_for(self, quadrant: int) -> "QuadTree":
        assert self.children is not None
        child = self.children[quadrant]
        if child is None:
            h = self.half / 2.0
            cx = self.cx + (h if quadrant & 1 else -h)
            cy = self.cy + (h if quadrant & 2 else -h)
            child = QuadTree.empty(cx, cy, h)
            self.children[quadrant] = child
        return child

    def insert(self, pos: np.ndarray, mass: np.ndarray, index: int) -> None:
        if self.count == 0 and self.children is None:
            self.body_index = index
            self.count = 1
            return
        if self.children is None:
            # Split the leaf.
            old = self.body_index
            self.children = [None, None, None, None]
            self.body_index = None
            if old is not None:
                self._child_for(self._quadrant(pos[old])).insert(pos, mass, old)
        self._child_for(self._quadrant(pos[index])).insert(pos, mass, index)
        self.count += 1

    def _accumulate(self, pos: np.ndarray, mass: np.ndarray) -> "tuple[float, np.ndarray]":
        """Bottom-up mass / center-of-mass aggregation after insertion."""
        if self.children is None:
            if self.body_index is None:
                self.mass = 0.0
                self.com = np.zeros(2)
            else:
                self.mass = float(mass[self.body_index])
                self.com = pos[self.body_index].astype(float)
            return self.mass, self.com * self.mass
        total = 0.0
        weighted = np.zeros(2)
        for child in self.children:
            if child is not None:
                m, w = child._accumulate(pos, mass)
                total += m
                weighted += w
        self.mass = total
        self.com = weighted / total if total > 0 else np.zeros(2)
        return total, weighted

    def force_on(self, p: np.ndarray, skip_index: int, theta: float) -> np.ndarray:
        """Approximate force on a body at ``p`` (excluding itself)."""
        return self._force(p, skip_index, theta)

    def _force(self, p: np.ndarray, skip_index: int, theta: float) -> np.ndarray:
        if self.count == 0:
            return np.zeros(2)
        if self.children is None:
            if self.body_index is None or self.body_index == skip_index:
                return np.zeros(2)
            return self._point_force(p, self.com, self.mass)
        d = self.com - p
        dist = float(np.sqrt((d ** 2).sum())) + 1e-12
        if (2.0 * self.half) / dist < theta:
            return self._point_force(p, self.com, self.mass)
        total = np.zeros(2)
        for child in self.children:
            if child is not None:
                total += child._force(p, skip_index, theta)
        return total

    @staticmethod
    def _point_force(p: np.ndarray, source: np.ndarray, mass: float) -> np.ndarray:
        d = source - p
        r2 = float((d ** 2).sum()) + 1e-9
        if r2 <= 1e-18:
            return np.zeros(2)
        return d * (mass * r2 ** -1.5)
