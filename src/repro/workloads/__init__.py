"""Benchmark workloads: the paper's twelve applications plus the eight
power-characterization micro-benchmarks.

Each workload couples:

* a **cost model** at the paper's input scale, which drives the SoC
  simulator's timing/power (this is what the evaluation runs on); and
* a **real Python/numpy implementation** of the same algorithm at a
  reduced scale, validated against reference implementations in the
  test suite (networkx, scipy, brute force).

See :mod:`repro.workloads.registry` for the evaluation suites.
"""

from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.microbench import standard_microbenches
from repro.workloads.registry import (
    DESKTOP_SUITE,
    TABLET_SUITE,
    all_workloads,
    workload_by_abbrev,
)
from repro.workloads.synthetic import SyntheticWorkload, generate_suite, generate_workload

__all__ = [
    "Workload",
    "InvocationSpec",
    "standard_microbenches",
    "all_workloads",
    "workload_by_abbrev",
    "DESKTOP_SUITE",
    "TABLET_SUITE",
    "SyntheticWorkload",
    "generate_workload",
    "generate_suite",
]
