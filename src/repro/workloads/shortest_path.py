"""Shortest Path (SP) - frontier-based SSSP, irregular and memory-bound.

Paper input: W-USA road network, 2577 kernel invocations (one per
relaxation round of a frontier-based Bellman-Ford).  Like BFS, the
frontiers of a road network are small and numerous; unlike BFS, a
vertex can re-enter the frontier when a shorter path is found, so the
total item count exceeds |V|.

The real implementation is validated against networkx Dijkstra.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.roadnet import (
    rescale_profile,
    small_road_network,
    small_sssp_profile,
    sssp_distances,
)

_DESKTOP_LAUNCHES = 2577
#: Re-relaxations push total work to a few multiples of |V|.
_DESKTOP_TOTAL_ITEMS = 2.5e7


class ShortestPath(Workload):
    """Frontier Bellman-Ford SSSP on a road network."""

    name = "Shortest Path"
    abbrev = "SP"
    regular = False
    tablet_supported = False
    input_desktop = "W-USA (|V|=6.2M, |E|=1.5M)"
    expected_compute_bound = False
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        if tablet:
            raise WorkloadError("SP does not build on the 32-bit tablet")
        # Relaxation reads neighbor distances and edge weights through
        # dependent scattered indices (latency-bound); atomic-min
        # updates add GPU instruction expansion and divergence.
        return KernelCostModel(
            name="sssp-round",
            instructions_per_item=220.0,
            loadstore_fraction=0.25,
            l3_miss_rate=0.34,
            cpu_simd_efficiency=0.009,
            gpu_simd_efficiency=0.0133,
            gpu_divergence=0.40,
            gpu_instruction_expansion=1.35,
            gpu_traffic_factor=0.70,
            item_cost_cv=0.6,
            cost_profile_scale=0.10,
            rng_tag=4,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            raise WorkloadError("SP does not build on the 32-bit tablet")
        sizes = rescale_profile(list(small_sssp_profile()),
                                target_launches=_DESKTOP_LAUNCHES,
                                target_total=_DESKTOP_TOTAL_ITEMS)
        return [InvocationSpec(n_items=s) for s in sizes]

    def validate(self) -> None:
        """Distances must match networkx Dijkstra exactly."""
        import networkx as nx

        graph = small_road_network()
        dist, rounds = sssp_distances(graph, source=0)
        g = nx.Graph()
        for v in range(graph.num_vertices):
            neighbors = graph.neighbors(v)
            weights = graph.edge_weights(v)
            for u, w in zip(neighbors, weights):
                # Undirected: keep the lighter parallel edge, as the
                # frontier relaxation does implicitly.
                if g.has_edge(int(v), int(u)):
                    w = min(w, g[int(v)][int(u)]["weight"])
                g.add_edge(int(v), int(u), weight=float(w))
        reference = nx.single_source_dijkstra_path_length(g, 0)
        bad = [v for v, d in reference.items()
               if not np.isclose(dist[v], d)]
        if bad:
            raise WorkloadError(
                f"SSSP distances disagree with Dijkstra at {len(bad)} "
                f"vertices (first: {bad[0]}: {dist[bad[0]]} vs "
                f"{reference[bad[0]]})")
        if not rounds or rounds[0] != 1:
            raise WorkloadError("SSSP should start from a single-source frontier")
