"""Synthetic road-network graphs and level-synchronous graph algorithms.

The paper's BFS, Connected Components and Shortest Path benchmarks run
on the W-USA road network (|V| = 6.2M).  Road networks are near-planar
with small average degree and enormous diameter, which is why those
benchmarks launch their kernel thousands of times (1748 / 2147 / 2577
launches): each launch processes one small frontier / active set.

We cannot ship the DIMACS W-USA graph, so :class:`RoadNetwork`
generates a structurally similar synthetic: a W x H grid (near-planar,
degree <= 4) with a small fraction of random "highway" shortcut edges
and random positive edge weights.  The real level-synchronous
algorithms below (BFS, label-propagation CC, frontier Bellman-Ford
SSSP) run on it at laptop scale - validated against networkx in the
test suite - and their per-round active-set profiles are rescaled to
the paper's launch counts and vertex counts to drive the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class CsrGraph:
    """Compressed-sparse-row adjacency with per-edge weights."""

    indptr: np.ndarray   # (V+1,)
    indices: np.ndarray  # (E,)
    weights: np.ndarray  # (E,)

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        return self.weights[self.indptr[v]:self.indptr[v + 1]]


def generate_road_network(width: int, height: int, shortcut_fraction: float = 0.002,
                          seed: int = 7) -> CsrGraph:
    """A W x H grid with random shortcuts and integer-ish weights.

    Undirected (each edge stored in both directions).  Connected by
    construction (the grid backbone).
    """
    if width < 2 or height < 2:
        raise WorkloadError("road network needs at least a 2x2 grid")
    rng = np.random.default_rng(seed)
    n = width * height

    def vid(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * width + x

    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    xs = xs.ravel()
    ys = ys.ravel()

    src_list: List[np.ndarray] = []
    dst_list: List[np.ndarray] = []
    # Horizontal edges.
    mask = xs < width - 1
    src_list.append(vid(xs[mask], ys[mask]))
    dst_list.append(vid(xs[mask] + 1, ys[mask]))
    # Vertical edges.
    mask = ys < height - 1
    src_list.append(vid(xs[mask], ys[mask]))
    dst_list.append(vid(xs[mask], ys[mask] + 1))
    # Highway shortcuts (none when the fraction rounds to zero).
    n_short = int(n * shortcut_fraction)
    if n_short > 0:
        a = rng.integers(0, n, size=n_short)
        b = rng.integers(0, n, size=n_short)
        keep = a != b
        src_list.append(a[keep])
        dst_list.append(b[keep])

    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    # Symmetrize.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    w = rng.integers(1, 20, size=len(src)).astype(np.float64)
    all_w = np.concatenate([w, w])

    order = np.argsort(all_src, kind="stable")
    all_src = all_src[order]
    all_dst = all_dst[order]
    all_w = all_w[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, all_src + 1, 1)
    indptr = np.cumsum(indptr)
    return CsrGraph(indptr=indptr, indices=all_dst.astype(np.int64), weights=all_w)


# -- real level-synchronous algorithms ------------------------------------------


def bfs_levels(graph: CsrGraph, source: int = 0) -> Tuple[np.ndarray, List[int]]:
    """Level-synchronous BFS; returns (level array, frontier sizes).

    Each entry of the frontier-size list corresponds to one kernel
    launch of the paper's BFS benchmark.
    """
    n = graph.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    sizes: List[int] = []
    depth = 0
    while len(frontier):
        sizes.append(len(frontier))
        # Gather all neighbors of the frontier.
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        gather = np.concatenate([
            graph.indices[s:e] for s, e in zip(starts, ends)])
        fresh = gather[level[gather] == -1]
        fresh = np.unique(fresh)
        depth += 1
        level[fresh] = depth
        frontier = fresh
    return level, sizes


def connected_components_labels(graph: CsrGraph) -> Tuple[np.ndarray, List[int]]:
    """Min-label propagation CC; returns (labels, active counts per round).

    Every round relaxes each active vertex's label to the minimum of
    its neighborhood - the data-parallel kernel of the paper's CC
    benchmark.  Active counts per round are the launch sizes.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rounds: List[int] = []
    while active.any():
        rounds.append(int(active.sum()))
        new_labels = labels.copy()
        active_vertices = np.nonzero(active)[0]
        for v in active_vertices:
            neigh = graph.neighbors(v)
            if len(neigh):
                m = labels[neigh].min()
                if m < new_labels[v]:
                    new_labels[v] = m
        changed = new_labels < labels
        labels = new_labels
        # Next round: changed vertices and their neighbors are active.
        active = np.zeros(n, dtype=bool)
        for v in np.nonzero(changed)[0]:
            active[v] = True
            active[graph.neighbors(v)] = True
    return labels, rounds


def sssp_distances(graph: CsrGraph, source: int = 0) -> Tuple[np.ndarray, List[int]]:
    """Frontier-based Bellman-Ford SSSP; returns (dist, active counts)."""
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    rounds: List[int] = []
    while len(frontier):
        rounds.append(len(frontier))
        relaxed = set()
        for v in frontier:
            dv = dist[v]
            neigh = graph.neighbors(v)
            w = graph.edge_weights(v)
            cand = dv + w
            better = cand < dist[neigh]
            for u, du in zip(neigh[better], cand[better]):
                dist[u] = min(dist[u], du)
                relaxed.add(int(u))
        frontier = np.fromiter(relaxed, dtype=np.int64, count=len(relaxed))
    return dist, rounds


# -- launch-profile rescaling -----------------------------------------------------


def rescale_profile(sizes: List[int], target_launches: int,
                    target_total: float) -> List[float]:
    """Stretch a small-graph launch profile to paper scale.

    Linearly resamples the per-launch active-set sizes to
    ``target_launches`` points and rescales so they sum to
    ``target_total`` items, preserving the profile's *shape* (the ramp
    up / long tail structure of road-network frontiers).
    """
    if not sizes:
        raise WorkloadError("empty launch profile")
    if target_launches < 1:
        raise WorkloadError("target_launches must be >= 1")
    src = np.asarray(sizes, dtype=np.float64)
    x_src = np.linspace(0.0, 1.0, num=len(src))
    x_dst = np.linspace(0.0, 1.0, num=target_launches)
    resampled = np.interp(x_dst, x_src, src)
    resampled = np.maximum(resampled, 1.0)
    resampled *= target_total / resampled.sum()
    return [float(v) for v in np.maximum(resampled, 1.0)]


# -- cached small instances (shared by the three graph workloads) ----------------

_SMALL_GRID = (96, 64)


@lru_cache(maxsize=1)
def small_road_network() -> CsrGraph:
    """The laptop-scale instance used for validation and profiles."""
    return generate_road_network(*_SMALL_GRID)


@lru_cache(maxsize=1)
def small_bfs_profile() -> Tuple[int, ...]:
    _, sizes = bfs_levels(small_road_network())
    return tuple(sizes)


@lru_cache(maxsize=1)
def small_cc_profile() -> Tuple[int, ...]:
    _, rounds = connected_components_labels(small_road_network())
    return tuple(rounds)


@lru_cache(maxsize=1)
def small_sssp_profile() -> Tuple[int, ...]:
    _, rounds = sssp_distances(small_road_network())
    return tuple(rounds)
