"""SkipList (SL) - concurrent skip-list construction/search.

Paper input: 500M keys (45M on the tablet), single long kernel
invocation.  Irregular and memory-bound: each operation chases tower
pointers through a multi-level probabilistic structure, with
data-dependent tower heights.

The real implementation is a complete probabilistic skip list with
deterministic seeding; validation checks ordering, search hits/misses
and the geometric level distribution.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload

_DESKTOP_KEYS = 5.0e8
_TABLET_KEYS = 4.5e7


class SkipList(Workload):
    """Bulk skip-list operations, one long memory-bound kernel."""

    name = "SkipList"
    abbrev = "SL"
    regular = False
    tablet_supported = True
    input_desktop = "500M keys"
    input_tablet = "45M keys"
    expected_compute_bound = False
    expected_cpu_short = False
    expected_gpu_short = False

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        # Pointer chasing through tower levels: few instructions, a
        # large share of them dependent loads that miss the LLC
        # (latency-bound).  Upper tower levels stay cache-resident, so
        # misses per op stay modest.
        return KernelCostModel(
            name="sl-ops",
            instructions_per_item=120.0,
            loadstore_fraction=0.20,
            l3_miss_rate=0.35,
            cpu_simd_efficiency=0.040,
            gpu_simd_efficiency=0.0496,
            gpu_divergence=0.30,
            gpu_instruction_expansion=1.3,
            gpu_traffic_factor=0.55,
            item_cost_cv=0.3,
            cost_profile_scale=0.08,
            rng_tag=7,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        keys = _TABLET_KEYS if tablet else _DESKTOP_KEYS
        return [InvocationSpec(n_items=keys)]

    def validate(self) -> None:
        """Insert/search correctness plus the geometric level law."""
        sl = SkipListStructure(max_level=12, p=0.5, seed=23)
        rng = random.Random(99)
        keys = rng.sample(range(100000), 3000)
        for k in keys:
            sl.insert(k)
        if sl.to_list() != sorted(keys):
            raise WorkloadError("skip list traversal is not sorted")
        for k in keys[:200]:
            if not sl.contains(k):
                raise WorkloadError(f"inserted key {k} not found")
        misses = [k for k in range(100001, 100100) if sl.contains(k)]
        if misses:
            raise WorkloadError(f"phantom keys found: {misses}")
        # Tower heights must decay roughly geometrically (p = 0.5).
        level1 = sl.count_at_level(1)
        if not 0.3 * len(keys) < level1 < 0.7 * len(keys):
            raise WorkloadError(
                f"level-1 occupancy {level1} far from p*N = {len(keys) / 2}")
        # Deletion keeps the structure consistent.
        for k in keys[:100]:
            sl.remove(k)
        if sl.to_list() != sorted(keys[100:]):
            raise WorkloadError("deletion corrupted the skip list")


class _Node:
    __slots__ = ("key", "forward")

    def __init__(self, key: int, level: int) -> None:
        self.key = key
        self.forward: List[Optional[_Node]] = [None] * level


class SkipListStructure:
    """A classical probabilistic skip list (Pugh, 1990)."""

    def __init__(self, max_level: int = 16, p: float = 0.5,
                 seed: int = 0) -> None:
        if not 0.0 < p < 1.0:
            raise WorkloadError("p must be in (0, 1)")
        if max_level < 1:
            raise WorkloadError("max_level must be >= 1")
        self.max_level = max_level
        self.p = p
        self._rng = random.Random(seed)
        self._head = _Node(key=-(1 << 62), level=max_level)
        self._level = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_level(self) -> int:
        level = 1
        while level < self.max_level and self._rng.random() < self.p:
            level += 1
        return level

    def _find_predecessors(self, key: int) -> List[_Node]:
        update: List[_Node] = [self._head] * self.max_level
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
            update[lvl] = node
        return update

    def insert(self, key: int) -> bool:
        """Insert; returns False if the key already exists."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._size += 1
        return True

    def contains(self, key: int) -> bool:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
        node = node.forward[0]
        return node is not None and node.key == key

    def remove(self, key: int) -> bool:
        """Remove; returns False if the key is absent."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def to_list(self) -> List[int]:
        out = []
        node = self._head.forward[0]
        while node is not None:
            out.append(node.key)
            node = node.forward[0]
        return out

    def count_at_level(self, level: int) -> int:
        """Number of nodes whose tower reaches ``level`` (0-based)."""
        count = 0
        node = self._head.forward[level] if level < self.max_level else None
        while node is not None:
            count += 1
            node = node.forward[level]
        return count
