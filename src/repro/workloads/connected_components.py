"""Connected Components (CC) - the paper's running example (Fig. 1).

Paper input: W-USA road network, 2147 kernel invocations (one per
label-propagation round).  Fig. 1 shows its energy/performance
trade-off on the desktop: best performance near alpha = 0.6, minimum
energy near alpha = 0.9.  Section 5 documents EAS's one notable miss:
online profiling over-estimates the GPU on this highly irregular
workload and picks alpha = 1.0 where the Oracle picks 0.9.

The cost model encodes both behaviours: the GPU's coalesced label
gathers give it ~1.5x the CPU's effective bandwidth (so alpha_PERF is
near 0.6 and the energy optimum is GPU-heavy), while strong long-range
irregularity (early iteration space is cheaper than the remainder)
biases prefix-based profiling toward the GPU.

The real implementation is min-label propagation, validated against
networkx connected components.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkloadError
from repro.soc.cost_model import KernelCostModel
from repro.workloads.base import InvocationSpec, Workload
from repro.workloads.roadnet import (
    connected_components_labels,
    rescale_profile,
    small_cc_profile,
    small_road_network,
)

_DESKTOP_LAUNCHES = 2147
#: Active-vertex work summed over all rounds, ~10x |V| for a
#: high-diameter network.
_DESKTOP_TOTAL_ITEMS = 6.2e7


class ConnectedComponents(Workload):
    """Label-propagation connected components on a road network."""

    name = "Connected Component"
    abbrev = "CC"
    regular = False
    tablet_supported = False
    input_desktop = "W-USA (|V|=6.2M, |E|=1.5M)"
    expected_compute_bound = False
    expected_cpu_short = True
    expected_gpu_short = True

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        if tablet:
            raise WorkloadError("CC does not build on the 32-bit tablet")
        # Latency-bound label gathers; the GPU's coalesced SIMT loads
        # give it ~1.5x the CPU's effective throughput (alpha_PERF
        # near 0.6, as Fig. 1 shows).
        return KernelCostModel(
            name="cc-round",
            instructions_per_item=150.0,
            loadstore_fraction=0.20,
            l3_miss_rate=0.36,
            cpu_simd_efficiency=0.013,
            gpu_simd_efficiency=0.0185,
            gpu_divergence=0.35,
            gpu_instruction_expansion=1.2,
            gpu_traffic_factor=0.80,
            item_cost_cv=1.1,
            cost_profile_scale=0.30,
            rng_tag=3,
        )

    def invocations(self, tablet: bool = False) -> List[InvocationSpec]:
        if tablet:
            raise WorkloadError("CC does not build on the 32-bit tablet")
        sizes = rescale_profile(list(small_cc_profile()),
                                target_launches=_DESKTOP_LAUNCHES,
                                target_total=_DESKTOP_TOTAL_ITEMS)
        return [InvocationSpec(n_items=s) for s in sizes]

    def validate(self) -> None:
        """Labels must induce the same partition networkx finds."""
        import networkx as nx

        graph = small_road_network()
        labels, rounds = connected_components_labels(graph)
        g = nx.Graph()
        g.add_nodes_from(range(graph.num_vertices))
        for v in range(graph.num_vertices):
            for u in graph.neighbors(v):
                g.add_edge(int(v), int(u))
        reference = list(nx.connected_components(g))
        ours = {}
        for v in range(graph.num_vertices):
            ours.setdefault(int(labels[v]), set()).add(v)
        our_partition = sorted(map(frozenset, ours.values()), key=min)
        ref_partition = sorted(map(frozenset, reference), key=min)
        if our_partition != ref_partition:
            raise WorkloadError("CC partition disagrees with networkx")
        if not rounds:
            raise WorkloadError("CC ran zero rounds")
        # Every vertex takes the minimum label of its component.
        for component in ref_partition:
            expected = min(component)
            got = {int(labels[v]) for v in component}
            if got != {expected}:
                raise WorkloadError(
                    f"component labelled {got}, expected {{{expected}}}")
