"""Engine scaling: parallel fan-out and cached re-run speedups.

A fig-9-style subset (full alpha sweeps + EAS + PERF for a handful of
workloads) is evaluated three ways:

* serially (``jobs=1``, no cache) - the baseline;
* through a 4-worker pool - must be byte-identical and, on a machine
  with >= 4 cores, >= 3x faster;
* replayed from a warm result cache - must be byte-identical and
  >= 10x faster than the serial run on any machine.

The byte-identity asserts are the point: speed without equivalence
would be a correctness bug, not an optimisation.
"""

import os
import time

from repro.core.metrics import EDP
from repro.harness.engine import ExecutionEngine, ResultCache
from repro.harness.suite import evaluate_suite
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

#: Enough workloads that pool startup is amortized, few enough that the
#: serial baseline stays in benchmark territory.
WORKLOADS = ("MB", "BS", "SP", "SM")


def _evaluate(engine):
    spec = haswell_desktop()
    workloads = [workload_by_abbrev(a) for a in WORKLOADS]
    return evaluate_suite(spec, workloads, EDP, engine=engine)


def _timed(engine):
    start = time.perf_counter()
    result = _evaluate(engine)
    return result, time.perf_counter() - start


def test_engine_scaling(benchmark, tmp_path):
    serial, serial_s = benchmark.pedantic(
        lambda: _timed(ExecutionEngine(jobs=1)), rounds=1, iterations=1)
    fingerprint = serial.fingerprint()

    pooled, pooled_s = _timed(ExecutionEngine(jobs=4))
    assert pooled.fingerprint() == fingerprint

    cache = ResultCache(str(tmp_path / "runs"))
    warm_engine = ExecutionEngine(jobs=1, cache=cache)
    warmed, _ = _timed(warm_engine)
    assert warmed.fingerprint() == fingerprint
    cached, cached_s = _timed(warm_engine)
    assert cached.fingerprint() == fingerprint
    assert cache.hits == cache.writes  # full replay, nothing recomputed

    pool_speedup = serial_s / pooled_s
    cache_speedup = serial_s / cached_s

    # The pool-scaling gate needs real cores to mean anything.
    if (os.cpu_count() or 1) >= 4:
        assert pool_speedup >= 3.0, (
            f"--jobs 4 speedup {pool_speedup:.2f}x < 3x "
            f"({serial_s:.2f}s serial vs {pooled_s:.2f}s pooled)")
    # Cache replay skips all simulation; 10x holds even on one core.
    assert cache_speedup >= 10.0, (
        f"cached re-run speedup {cache_speedup:.2f}x < 10x "
        f"({serial_s:.2f}s serial vs {cached_s:.2f}s cached)")

    benchmark.extra_info.update({
        "serial_s": round(serial_s, 2),
        "jobs4_s": round(pooled_s, 2),
        "jobs4_speedup (gate 3x)": round(pool_speedup, 2),
        "cached_s": round(cached_s, 3),
        "cached_speedup (gate 10x)": round(cache_speedup, 1),
        "cores": os.cpu_count(),
    })
