"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) exactly once per session and asserts its shape-level
reproduction properties.  Key paper-vs-measured numbers are attached to
each benchmark's ``extra_info`` so they appear in the report table of
``pytest benchmarks/ --benchmark-only``.

Alpha sweeps are cached at module level inside
:mod:`repro.harness.figures`, so the EDP and energy benchmarks of one
platform share their (expensive) Oracle sweeps.
"""

import pytest


def run_once(benchmark, fn):
    """Run a regenerator exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)
    return _run
