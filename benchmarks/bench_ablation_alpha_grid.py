"""Ablation: alpha search grid resolution.

The paper searches alpha in 0.1 increments and mentions 0.05 as an
option, noting the evaluation cost is negligible either way.  This
ablation compares 0.25 / 0.1 / 0.05 / 0.02 steps.
"""

from repro.core.scheduler import SchedulerConfig

from benchmarks._ablation_common import mean_efficiency


def test_ablation_alpha_grid(benchmark):
    def run():
        return {step: mean_efficiency(config=SchedulerConfig(alpha_step=step))
                for step in (0.25, 0.1, 0.05, 0.02)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Finer grids never *help*: the bottleneck is profiling accuracy,
    # not grid resolution, and a finer grid can even lose ground by
    # trusting the model's interpolation between the 0.1-grid points
    # the Oracle itself is defined on.
    assert results[0.05] <= results[0.1] + 6.0
    assert results[0.02] <= results[0.1] + 6.0
    assert results[0.1] > 85.0

    for step, eff in results.items():
        benchmark.extra_info[f"step_{step}"] = round(eff, 1)
        print(f"alpha step {step:5.2f}: EAS efficiency {eff:5.1f}%")
