"""Ablation: the value of the 8-way workload taxonomy.

The paper's claim: "this simple classification into eight categories
works surprisingly well".  This ablation collapses the curve table to
a single curve (every category mapped to the balanced long-running
compute curve, then the memory one) and compares against the full
8-way table.
"""

from repro.core.categories import all_categories, category_from_codes
from repro.core.characterization import PlatformCharacterization
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop

from benchmarks._ablation_common import mean_efficiency


def collapsed(curve_code: str) -> PlatformCharacterization:
    full = get_characterization(haswell_desktop())
    single = full.curve_for(category_from_codes(curve_code))
    return PlatformCharacterization(
        platform_name=full.platform_name,
        curves={category: single for category in all_categories()})


def test_ablation_category_count(benchmark):
    def run():
        return {
            "8 categories": mean_efficiency(),
            "only C-LL": mean_efficiency(characterization=collapsed("C-LL")),
            "only M-LL": mean_efficiency(characterization=collapsed("M-LL")),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # The full taxonomy is at least as good as any single-curve
    # collapse on the mixed workload subset.
    assert results["8 categories"] >= max(
        results["only C-LL"], results["only M-LL"]) - 2.0
    assert results["8 categories"] > 85.0

    for name, eff in results.items():
        benchmark.extra_info[name] = round(eff, 1)
        print(f"{name:14s}: EAS efficiency {eff:5.1f}%")
