"""Ablation: how much does the Oracle's 0.1 grid leave on the table?

The paper's Oracle exhaustively searches alpha in 0.1 increments.  A
finer grid can only improve it; this ablation quantifies by how much
(i.e. the quantization error baked into every "percent of Oracle"
number, ours and the paper's).
"""

from repro.core.metrics import EDP
from repro.harness.suite import sweep_alphas
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

WORKLOADS = ("NB", "BS", "SM")


def test_ablation_oracle_grid(benchmark):
    spec = haswell_desktop()

    def run():
        results = {}
        for abbrev in WORKLOADS:
            workload = workload_by_abbrev(abbrev)
            coarse = sweep_alphas(spec, workload, step=0.1)
            fine = sweep_alphas(spec, workload, step=0.05)
            coarse_best = coarse.oracle(EDP).metric_value(EDP)
            fine_best = fine.oracle(EDP).metric_value(EDP)
            results[abbrev] = (coarse_best, fine_best,
                               fine.oracle_alpha(EDP))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for abbrev, (coarse_best, fine_best, fine_alpha) in results.items():
        # A finer grid can only match or beat the coarse oracle.
        assert fine_best <= coarse_best * (1 + 1e-9), abbrev
        gain = 100.0 * (1.0 - fine_best / coarse_best)
        benchmark.extra_info[abbrev] = f"{gain:.1f}% tighter at 0.05"
        print(f"{abbrev}: 0.05-grid oracle is {gain:4.1f}% tighter than the "
              f"paper's 0.1 grid (best alpha {fine_alpha:.2f})")
        # The quantization error of the paper's baseline is modest.
        assert gain < 25.0, abbrev
