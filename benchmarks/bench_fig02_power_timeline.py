"""Figure 2: package power over time, memory-bound 90/10 GPU-CPU split.

Paper shape: when only the CPU remains active, package power *drops*
on the Bay Trail (its GPU is the big consumer) but *rises* on the
Haswell (whose PCU had been holding the CPU down during GPU activity).
"""

from repro.harness.figures import regenerate_figure_2


def test_fig02_power_timeline(benchmark):
    result = benchmark.pedantic(regenerate_figure_2, rounds=1, iterations=1)

    notes = {note.split(":")[0]: note for note in result.notes}
    assert "drops" in notes["Bay Trail tablet"]
    assert "rises" in notes["Haswell desktop"]
    # Both series actually contain a timeline.
    for label, (times, watts) in result.series.items():
        assert len(times) > 10, label
        assert max(watts) > min(watts), label

    benchmark.extra_info.update({
        "baytrail_tail": "drops (paper: drops)",
        "haswell_tail": "rises (paper: rises)",
    })
    print(result.render())
