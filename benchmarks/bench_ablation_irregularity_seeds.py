"""Ablation: robustness of EAS to the irregularity realization.

The irregular workloads' per-item cost fields are deterministic
functions of a seed tag.  The paper's CC miss depends on the *specific*
irregularity of W-USA; this ablation re-rolls Connected Components'
cost field under several seeds and checks that EAS's Oracle-relative
efficiency is robust - i.e. the reproduction's conclusions do not hang
on one lucky field.
"""

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization, sweep_alphas
from repro.soc.cost_model import KernelCostModel
from repro.soc.spec import haswell_desktop
from repro.workloads.connected_components import ConnectedComponents

SEEDS = (3, 101, 202, 303)


class ReseededCC(ConnectedComponents):
    """CC with a re-rolled irregularity field."""

    def __init__(self, tag: int) -> None:
        self._tag = tag

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        return super().cost_model(tablet=tablet).with_overrides(
            rng_tag=self._tag)


def test_ablation_irregularity_seeds(benchmark):
    spec = haswell_desktop()
    characterization = get_characterization(spec)

    def run():
        efficiencies = {}
        for seed in SEEDS:
            workload = ReseededCC(seed)
            sweep = sweep_alphas(spec, workload)
            scheduler = EnergyAwareScheduler(characterization, EDP)
            eas = run_application(spec, workload, scheduler, "EAS")
            oracle = sweep.oracle(EDP).metric_value(EDP)
            efficiencies[seed] = (
                100.0 * oracle / eas.metric_value(EDP),
                eas.final_alpha, sweep.oracle_alpha(EDP))
        return efficiencies

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    values = [eff for eff, _, _ in results.values()]
    for seed, (eff, eas_alpha, oracle_alpha) in results.items():
        benchmark.extra_info[f"seed_{seed}"] = round(eff, 1)
        print(f"seed {seed:4d}: efficiency {eff:5.1f}% "
              f"(EAS alpha {eas_alpha:.2f}, Oracle alpha {oracle_alpha:.1f})")
    print(f"spread: {min(values):.1f}% .. {max(values):.1f}%")

    # EAS never collapses under any irregularity realization, and the
    # typical efficiency stays in the paper's neighbourhood.
    assert min(values) > 70.0
    assert sum(values) / len(values) > 85.0
