"""Figure 3: desktop co-execution power, compute- vs memory-bound.

Paper shape: during CPU+GPU co-execution the memory-bound
micro-benchmark draws ~63 W against the compute-bound one's ~55 W -
memory-bound work is the *more* power-hungry kind on this desktop.
"""

import re

from repro.harness.figures import regenerate_figure_3


def test_fig03_bound_contrast(benchmark):
    result = benchmark.pedantic(regenerate_figure_3, rounds=1, iterations=1)

    watts = {}
    for note in result.notes[:2]:
        label = note.split(":")[0]
        watts[label] = float(re.search(r"([\d.]+) W", note).group(1))

    assert watts["memory-bound"] > watts["compute-bound"]
    # Within the paper's ballpark (~55 W and ~63 W).
    assert 45.0 < watts["compute-bound"] < 62.0
    assert 52.0 < watts["memory-bound"] < 70.0

    benchmark.extra_info.update({
        "compute_coexec_w (paper ~55)": watts["compute-bound"],
        "memory_coexec_w (paper ~63)": watts["memory-bound"],
    })
    print(result.render())
