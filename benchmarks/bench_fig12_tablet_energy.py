"""Figure 12: Bay Trail total-energy efficiency vs Oracle.

Paper: EAS averages 96.4% - 7.5% better than PERF, 10.1% better than
GPU-alone, 57.2% better than CPU-alone.
"""

from repro.harness.figures import regenerate_figure_12


def test_fig12_tablet_energy(benchmark):
    result = benchmark.pedantic(regenerate_figure_12, rounds=1, iterations=1)

    cpu = result.average("CPU")
    gpu = result.average("GPU")
    eas = result.average("EAS")

    assert eas > 90.0          # paper 96.4
    assert eas > gpu           # paper: +10.1 over GPU
    assert eas - cpu > 20.0    # paper: +57.2 over CPU
    assert gpu > cpu           # GPU still beats CPU-alone on energy

    benchmark.extra_info.update({
        "EAS_avg (paper 96.4)": round(eas, 1),
        "EAS_minus_GPU (paper 10.1)": round(eas - gpu, 1),
        "EAS_minus_CPU (paper 57.2)": round(eas - cpu, 1),
    })
    print(result.render())
