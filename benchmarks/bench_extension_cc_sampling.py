"""Extension: increased profiling sampling rate on Connected Components.

Section 5 of the paper, on its one documented EAS miss: "A possible
solution is to increase the profiling sampling rate to improve the
accuracy for this workload. We intend to investigate this as part of
our future work."  This benchmark runs that investigation on the
simulator: the default EAS against a high-sampling variant that
re-profiles on every invocation (so alpha keeps integrating fresh
samples from across the irregular iteration space, instead of trusting
the first profilable invocation's prefix).
"""

from repro.core.metrics import EDP
from repro.core.scheduler import SchedulerConfig, EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.figures import _cached_sweep
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def cc_efficiency(config: SchedulerConfig) -> "tuple[float, float]":
    spec = haswell_desktop()
    workload = workload_by_abbrev("CC")
    sweep = _cached_sweep(spec, workload, tablet=False)
    scheduler = EnergyAwareScheduler(get_characterization(spec), EDP,
                                     config=config)
    run = run_application(spec, workload, scheduler, "EAS")
    oracle = sweep.oracle(EDP).metric_value(EDP)
    return 100.0 * oracle / run.metric_value(EDP), run.final_alpha


def test_extension_cc_sampling(benchmark):
    def run():
        default_eff, default_alpha = cc_efficiency(SchedulerConfig())
        high_eff, high_alpha = cc_efficiency(
            SchedulerConfig(always_reprofile=True))
        return {
            "default": (default_eff, default_alpha),
            "high-sampling": (high_eff, high_alpha),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    default_eff, _ = results["default"]
    high_eff, _ = results["high-sampling"]
    assert default_eff > 80.0
    # Re-profiling all 2147 invocations is costly; it must stay usable
    # but is allowed to lose ground - that loss is the finding.
    assert high_eff > 40.0

    for name, (eff, alpha) in results.items():
        benchmark.extra_info[name] = f"eff={eff:.1f}% alpha={alpha:.2f}"
        print(f"{name:14s}: CC EDP efficiency {eff:5.1f}% "
              f"(final alpha {alpha:.2f})")
    delta = high_eff - default_eff
    verdict = "helps" if delta > 1.0 else (
        "hurts" if delta < -1.0 else "is neutral")
    print(f"-> increased sampling {verdict} on CC "
          f"({delta:+.1f} points); the paper left this as future work.")
