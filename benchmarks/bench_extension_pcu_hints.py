"""Extension: runtime->PCU power hints (the paper's concluding future work).

"In future, we would like to incorporate feedback from our user-level
runtime in power management techniques."  The simulated PCU exposes an
efficiency-hint knob; :class:`HintedEnergyAwareScheduler` paces the
co-executing CPU when the energy model says the pace pays for itself.
This benchmark measures the payoff across the desktop workloads whose
energy optimum is hybrid.
"""

from repro.core.hinted import HintedEnergyAwareScheduler
from repro.core.metrics import ENERGY
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

WORKLOADS = ("SL", "CC", "BS", "SM", "MB")


def test_extension_pcu_hints(benchmark):
    spec = haswell_desktop()
    characterization = get_characterization(spec)

    def run():
        results = {}
        for abbrev in WORKLOADS:
            workload = workload_by_abbrev(abbrev)
            plain = run_application(
                spec, workload,
                EnergyAwareScheduler(characterization, ENERGY), "eas")
            hinted = run_application(
                spec, workload,
                HintedEnergyAwareScheduler(characterization, ENERGY),
                "hinted")
            results[abbrev] = (plain.energy_j, hinted.energy_j,
                               plain.time_s, hinted.time_s)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    savings = []
    for abbrev, (e_plain, e_hinted, t_plain, t_hinted) in results.items():
        saving = 100.0 * (1.0 - e_hinted / e_plain)
        savings.append(saving)
        # The joint search includes the stock hint, so a material
        # regression means the adjustment model is broken.
        assert e_hinted <= e_plain * 1.05, abbrev
        benchmark.extra_info[abbrev] = f"{saving:+.1f}% energy"
        print(f"{abbrev}: energy {e_plain:8.1f} J -> {e_hinted:8.1f} J "
              f"({saving:+5.1f}%), time {t_plain:6.3f} s -> {t_hinted:6.3f} s")

    mean_saving = sum(savings) / len(savings)
    print(f"mean energy saving from PCU hints: {mean_saving:+.1f}%")
    benchmark.extra_info["mean_saving"] = f"{mean_saving:+.1f}%"
    # At least one hybrid workload must show a real saving.
    assert max(savings) > 1.0
