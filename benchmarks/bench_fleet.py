"""Fleet dispatch at scale: 1000 mixed nodes over a bursty trace.

The acceptance surface of the fleet layer, measured in one benchmark:

* a seeded 1000-node desktop/tablet fleet completes a bursty arrival
  trace under every placement policy;
* rerunning is **byte-identical** (same `FleetResult` fingerprint);
* serial and pooled (``--jobs 2``) cell execution are byte-identical;
* the `energy_aware` policy beats `random` on total fleet energy
  while missing no more deadlines.

The fleet layer's cost is per distinct (platform class, workload)
cell, not per node, so a thousand nodes stays in benchmark territory:
4 workloads x 2 classes = at most 8 cell simulations, shared across
all policies through the result cache.
"""

from repro.fleet import FleetSpec, TraceSpec, compare_fleet_policies, run_fleet
from repro.harness.engine import ExecutionEngine, ResultCache

FLEET = FleetSpec(n_nodes=1000, desktop_fraction=0.5, tick_mode="fast",
                  seed=2016)
TRACE = TraceSpec(kind="bursty", duration_s=60.0, mean_rate_hz=4.0,
                  workloads=("MB", "MM", "RT", "BS"), seed=2016)


def test_fleet_scale(benchmark, tmp_path, once):
    cache = ResultCache(str(tmp_path / "runs"))
    engine = ExecutionEngine(jobs=1, cache=cache)

    comparison = once(
        lambda: compare_fleet_policies(FLEET, TRACE, engine=engine))

    # Every policy placed every request.
    n_requests = len(TRACE.requests())
    assert n_requests > 100
    for result in comparison.results:
        assert result.n_requests == n_requests

    # Rerun: byte-identical fingerprints (warm cache, same dispatch).
    again = compare_fleet_policies(FLEET, TRACE, engine=engine)
    assert again.fingerprint() == comparison.fingerprint()
    for result in again.results:
        assert result.cells_executed == 0  # all recalled from cache

    # Serial vs process pool: byte-identical.
    pooled = run_fleet(FLEET, TRACE, policy="energy_aware",
                       engine=ExecutionEngine(jobs=2, cache=None))
    assert (pooled.fingerprint()
            == comparison.result("energy_aware").fingerprint())

    # The headline claim: energy-aware placement, reading only
    # fleet-visible signals, beats random placement on energy without
    # missing more deadlines.
    energy_aware = comparison.result("energy_aware")
    random_result = comparison.result("random")
    assert energy_aware.total_energy_j < random_result.total_energy_j
    assert energy_aware.miss_rate <= random_result.miss_rate

    benchmark.extra_info.update({
        "nodes": FLEET.n_nodes,
        "requests": n_requests,
        "cells": len(energy_aware.cells),
        "energy_aware_J": round(energy_aware.total_energy_j, 1),
        "random_J": round(random_result.total_energy_j, 1),
        "energy_saving_pct": round(
            100.0 * (1.0 - energy_aware.total_energy_j
                     / random_result.total_energy_j), 1),
        "energy_aware_miss_pct": round(100.0 * energy_aware.miss_rate, 1),
        "random_miss_pct": round(100.0 * random_result.miss_rate, 1),
    })
