"""Fleet dispatch at scale: a million requests over 2000 nodes.

The streaming-dispatcher acceptance campaign (see docs/FLEET.md,
"Streaming dispatch"):

* **throughput** - streaming mode routes a ``$FLEET_REQUESTS``-request
  (default 1M) bursty trace over ``$FLEET_NODES`` (default 2000) mixed
  desktop/tablet nodes; the reference loop routes a
  ``$FLEET_REFERENCE_REQUESTS`` (default 20k) prefix-sized trace of
  the same shape.  End-to-end requests/second (trace generation
  included for both) must favor streaming by at least
  ``$FLEET_SPEED_MIN_SPEEDUP`` (default 20) on the fully vectorized
  ``round_robin`` path; ``random`` and ``least_loaded`` ratios are
  reported unasserted (``least_loaded`` stays per-request sequential
  by nature - each dispatch moves the backlog the next one reads).
* **bounded memory** - tracemalloc peak per request: streaming must
  stay under a fifth of the reference's per-request footprint (it
  holds ~18 B/request of columns; the reference holds outcome +
  record objects).
* **equivalence** - on a reduced grid every policy's streaming run
  fingerprints byte-identical to the reference's
  ``stream_fingerprint()`` (same placement decisions, same
  timestamps).
* **policy quality** - ``energy_aware`` still beats ``random`` on
  fleet energy without missing more deadlines (reduced grid).
* **disabled observability** - the per-chunk instrumentation costs
  nothing when no observer is attached: an analytic bound in the
  style of ``bench_obs_overhead`` must stay under 1%.

Everything lands in ``BENCH_fleet.json`` (``$BENCH_FLEET_JSON``).
CI runs a reduced campaign via the same knobs; the committed JSON is
a full-scale local run.
"""

import json
import os
import time
import tracemalloc

from repro.fleet import (
    PLACEMENT_POLICIES,
    FleetSpec,
    TraceSpec,
    dispatch_stream,
    run_fleet,
    trace_columns,
)
from repro.harness.engine import ExecutionEngine, ResultCache

OUTPUT_PATH = os.environ.get("BENCH_FLEET_JSON", "BENCH_fleet.json")
N_REQUESTS = int(os.environ.get("FLEET_REQUESTS", "1000000"))
N_NODES = int(os.environ.get("FLEET_NODES", "2000"))
MIN_SPEEDUP = float(os.environ.get("FLEET_SPEED_MIN_SPEEDUP", "20"))
REF_REQUESTS = int(os.environ.get("FLEET_REFERENCE_REQUESTS", "20000"))

#: Streaming holds columns (~18 B/request) instead of objects
#: (hundreds of bytes each); a 5x per-request margin is conservative.
MEMORY_RATIO_MIN = 5.0

#: Arrival rate for the scaled campaign; the duration is derived so
#: duration x rate ~= the request target.
RATE_HZ = 1000.0
WORKLOADS = ("MB", "MM", "RT", "BS")

FLEET = FleetSpec(n_nodes=N_NODES, desktop_fraction=0.5,
                  tick_mode="fast", seed=2016)
TRACE = TraceSpec(kind="bursty", duration_s=N_REQUESTS / RATE_HZ,
                  mean_rate_hz=RATE_HZ, workloads=WORKLOADS, seed=2016)
REF_TRACE = TraceSpec(kind="bursty", duration_s=REF_REQUESTS / RATE_HZ,
                      mean_rate_hz=RATE_HZ, workloads=WORKLOADS,
                      seed=2016)

#: Reduced grid for the cross-mode equivalence lock and the policy
#: quality check: small enough that the per-request reference loop
#: runs every policy quickly.
GRID_FLEET = FleetSpec(n_nodes=64, desktop_fraction=0.5,
                       tick_mode="fast", seed=9)
GRID_TRACE = TraceSpec(kind="bursty", duration_s=2.0, mean_rate_hz=1000.0,
                       workloads=WORKLOADS, seed=9)


def _timed_stream(engine, policy, trace=TRACE):
    started = time.perf_counter()
    result = dispatch_stream(FLEET, trace, policy=policy, engine=engine)
    wall = time.perf_counter() - started
    return result, wall


def _timed_reference(engine, policy):
    started = time.perf_counter()
    result = run_fleet(FLEET, REF_TRACE, policy=policy, engine=engine)
    wall = time.perf_counter() - started
    return result, wall


def _peak_bytes(fn):
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _disabled_obs_bound_pct(engine, stream_wall_s, n_chunks):
    """Analytic bound on the disabled-observability overhead.

    With no observer the streaming loop pays one ``is not None`` guard
    at each of its handful of per-chunk hook sites (span open/close,
    five counters, two gauges, the record hand-off) - generously 16
    guards per chunk plus 8 per run.  Measure the guard cost in a
    tight loop and bound the total against the measured wall time.
    """
    obs = None
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        if obs is not None:
            pass
    t_guard = (time.perf_counter() - t0) / n
    overhead_s = (16 * n_chunks + 8) * t_guard
    return 100.0 * overhead_s / max(stream_wall_s, 1e-9)


def test_fleet_streaming_campaign(benchmark, tmp_path):
    engine = ExecutionEngine(jobs=1,
                             cache=ResultCache(str(tmp_path / "runs")))

    # Warm the (class x workload) cell cache so the timed sections
    # measure dispatch, not the 8 shared cell simulations.
    warm = dispatch_stream(FLEET, REF_TRACE, policy="round_robin",
                           engine=engine)
    assert len(warm.cells) <= 2 * len(WORKLOADS)

    report = {
        "campaign": {
            "requests": None,  # measured below
            "nodes": N_NODES,
            "trace": "bursty",
            "reference_requests": None,
            "min_speedup": MIN_SPEEDUP,
        },
        "throughput": {},
        "memory": {},
        "equivalence": {},
        "observability": {},
    }

    # -- throughput: streaming full campaign vs reference prefix -------------
    def _measure():
        for policy in ("round_robin", "random", "least_loaded"):
            st, st_wall = _timed_stream(engine, policy)
            ref, ref_wall = _timed_reference(engine, policy)
            st_rate = st.n_requests / st_wall
            ref_rate = ref.n_requests / ref_wall
            report["campaign"]["requests"] = st.n_requests
            report["campaign"]["reference_requests"] = ref.n_requests
            report["throughput"][policy] = {
                "stream_req_per_s": round(st_rate),
                "stream_wall_s": round(st_wall, 3),
                "stream_chunks": st.n_chunks,
                "reference_req_per_s": round(ref_rate),
                "reference_wall_s": round(ref_wall, 3),
                "speedup": round(st_rate / ref_rate, 2),
            }
        return report

    benchmark.pedantic(_measure, rounds=1, iterations=1, warmup_rounds=0)

    headline = report["throughput"]["round_robin"]
    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"streaming round_robin sustained {headline['stream_req_per_s']} "
        f"req/s vs the reference's {headline['reference_req_per_s']} - "
        f"{headline['speedup']}x, below the {MIN_SPEEDUP}x floor")

    # Trace generation (the exact scalar RNG stream, kept for
    # bit-equality with the scalar generators) is the streaming
    # pipeline's floor; report the dispatch-only rate too.
    t0 = time.perf_counter()
    trace_columns(TRACE)
    gen_wall = time.perf_counter() - t0
    dispatch_wall = max(headline["stream_wall_s"] - gen_wall, 1e-9)
    report["throughput"]["trace_generation_s"] = round(gen_wall, 3)
    report["throughput"]["round_robin_dispatch_only_req_per_s"] = round(
        report["campaign"]["requests"] / dispatch_wall)

    # -- bounded memory ------------------------------------------------------
    stream_peak = _peak_bytes(
        lambda: dispatch_stream(FLEET, TRACE, policy="round_robin",
                                engine=engine))
    ref_peak = _peak_bytes(
        lambda: run_fleet(FLEET, REF_TRACE, policy="round_robin",
                          engine=engine))
    stream_per_req = stream_peak / report["campaign"]["requests"]
    ref_per_req = ref_peak / report["campaign"]["reference_requests"]
    report["memory"] = {
        "stream_peak_bytes": stream_peak,
        "stream_bytes_per_request": round(stream_per_req, 1),
        "reference_peak_bytes": ref_peak,
        "reference_bytes_per_request": round(ref_per_req, 1),
        "per_request_ratio": round(ref_per_req / stream_per_req, 1),
    }
    assert stream_per_req * MEMORY_RATIO_MIN < ref_per_req, (
        f"streaming holds {stream_per_req:.0f} B/request vs the "
        f"reference's {ref_per_req:.0f} - less than the required "
        f"{MEMORY_RATIO_MIN}x headroom")

    # -- cross-mode equivalence (reduced grid, every policy) -----------------
    for policy in PLACEMENT_POLICIES:
        ref = run_fleet(GRID_FLEET, GRID_TRACE, policy=policy,
                        engine=engine)
        st = dispatch_stream(GRID_FLEET, GRID_TRACE, policy=policy,
                             engine=engine)
        identical = ref.stream_fingerprint() == st.fingerprint()
        report["equivalence"][policy] = {
            "requests": ref.n_requests,
            "fingerprints_identical": identical,
        }
        assert identical, (
            f"streaming {policy} diverged from the reference on the "
            f"reduced grid - placement decisions are not identical")

    # -- policy quality (unchanged claim, streaming numbers) -----------------
    energy_aware = dispatch_stream(GRID_FLEET, GRID_TRACE,
                                   policy="energy_aware", engine=engine)
    random_result = dispatch_stream(GRID_FLEET, GRID_TRACE,
                                    policy="random", engine=engine)
    assert energy_aware.total_energy_j < random_result.total_energy_j
    assert energy_aware.miss_rate <= random_result.miss_rate
    report["equivalence"]["energy_aware_vs_random"] = {
        "energy_aware_J": round(energy_aware.total_energy_j, 1),
        "random_J": round(random_result.total_energy_j, 1),
        "saving_pct": round(
            100.0 * (1.0 - energy_aware.total_energy_j
                     / random_result.total_energy_j), 1),
    }

    # -- disabled observability bound ----------------------------------------
    bound_pct = _disabled_obs_bound_pct(
        engine, headline["stream_wall_s"], headline["stream_chunks"])
    report["observability"] = {
        "disabled_overhead_bound_pct": round(bound_pct, 4),
    }
    assert bound_pct < 1.0, (
        f"disabled-observability bound {bound_pct:.3f}% breaches the "
        f"1% contract")

    with open(OUTPUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    benchmark.extra_info.update({
        "requests": report["campaign"]["requests"],
        "nodes": N_NODES,
        "round_robin_speedup": headline["speedup"],
        "stream_req_per_s": headline["stream_req_per_s"],
        "stream_B_per_req": report["memory"]["stream_bytes_per_request"],
        "reference_B_per_req": report["memory"][
            "reference_bytes_per_request"],
    })
