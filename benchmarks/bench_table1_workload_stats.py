"""Table 1: benchmark statistics and online classification.

Paper columns reproduced: invocation counts, regular/irregular, and
the measured compute/memory classification.  The short/long columns
come from the online classifier on the simulated desktop and are
compared workload by workload.
"""

from repro.harness.figures import regenerate_table_1

PAPER = {
    # abbrev: (invocations, reg, C/M, cpu S/L, gpu S/L)
    "BH": (1, "IR", "M", "L", "L"),
    "BFS": (1748, "IR", "M", "S", "S"),
    "CC": (2147, "IR", "M", "S", "S"),
    "FD": (132, "IR", "C", "S", "S"),
    "MB": (1, "IR", "M", "L", "L"),
    "SL": (1, "IR", "M", "L", "L"),
    "SP": (2577, "IR", "M", "S", "S"),
    "BS": (2000, "R", "C", "S", "S"),
    "MM": (1, "R", "C", "L", "L"),
    "NB": (101, "R", "C", "L", "S"),
    "RT": (1, "R", "C", "L", "L"),
    "SM": (100, "R", "M", "S", "S"),
}


def test_table1_workload_stats(benchmark):
    result = benchmark.pedantic(regenerate_table_1, rounds=1, iterations=1)

    mismatched_durations = []
    for row in result.rows:
        (_, abbrev, _, _, invocations, reg, bound, cpu_sl, gpu_sl) = row
        paper_inv, paper_reg, paper_bound, paper_cpu, paper_gpu = PAPER[abbrev]
        # Compile-time statistics match the paper exactly.
        assert invocations == paper_inv, abbrev
        assert reg == paper_reg, abbrev
        # Measured boundedness matches the paper for every workload.
        assert bound == paper_bound, abbrev
        # Short/long comes from online measurement and may disagree on
        # borderline workloads; count the disagreements.
        if (cpu_sl, gpu_sl) != (paper_cpu, paper_gpu):
            mismatched_durations.append(abbrev)

    # At most two borderline short/long mismatches across 12 workloads.
    assert len(mismatched_durations) <= 2, mismatched_durations

    benchmark.extra_info.update({
        "duration_mismatches": ",".join(mismatched_durations) or "none",
    })
    print(result.render())
