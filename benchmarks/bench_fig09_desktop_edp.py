"""Figure 9: desktop energy-delay-product efficiency vs Oracle.

Paper averages: GPU 79.6%, PERF 83.9%, EAS 96.2% (Oracle = 100%).
Reproduction targets are shape-level: the strategy ordering
CPU << {GPU, PERF} < EAS and averages within several points.
"""

from repro.harness.figures import regenerate_figure_9


def test_fig09_desktop_edp(benchmark):
    result = benchmark.pedantic(regenerate_figure_9, rounds=1, iterations=1)

    cpu = result.average("CPU")
    gpu = result.average("GPU")
    perf = result.average("PERF")
    eas = result.average("EAS")

    # Ordering: EAS is the best strategy, far ahead of CPU-alone.
    assert eas > gpu
    assert eas > perf
    assert cpu < 50.0
    # Magnitudes near the paper's.
    assert 70.0 < gpu < 95.0       # paper 79.6
    assert 70.0 < perf < 95.0      # paper 83.9
    assert eas > 88.0              # paper 96.2
    # The CC anomaly: EAS over-offloads the highly irregular CC
    # relative to PERF's split (the paper's one documented miss shows
    # the same mechanism: profiling over-estimates the GPU on CC).
    cc_eas_alpha = result.evaluation.outcome("CC", "EAS").alpha
    cc_perf_alpha = result.evaluation.outcome("CC", "BEST-TIME").alpha
    assert cc_eas_alpha >= cc_perf_alpha

    benchmark.extra_info.update({
        "GPU_avg (paper 79.6)": round(gpu, 1),
        "PERF_avg (paper 83.9)": round(perf, 1),
        "EAS_avg (paper 96.2)": round(eas, 1),
    })
    print(result.render())
