"""Profiling/scheduling overhead accounting.

The paper reports that online profiling plus the sample-weighted
accumulation costs on average 1-2 microseconds per invocation.  Two
quantities here:

* the *scheduling computation* itself (classification + alpha grid
  search), measured with the host performance clock - this is the
  paper's microseconds figure;
* the *profiling work share*: profiling rounds do useful work, so
  their cost shows up only as deviation from the chosen alpha, which
  the efficiency figures already capture.  We report the share of
  simulated time spent inside profiling phases.
"""

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def test_profiling_overhead(benchmark):
    spec = haswell_desktop()
    characterization = get_characterization(spec)

    def run():
        stats = {}
        for abbrev in ("BS", "NB", "CC"):
            workload = workload_by_abbrev(abbrev)
            scheduler = EnergyAwareScheduler(characterization, EDP)
            app = run_application(spec, workload, scheduler, "EAS")
            overheads = [d.decision_overhead_s for d in scheduler.decisions
                         if d.profile_rounds > 0]
            profiling_share = (sum(r.profiling_time_s for r in app.invocations)
                               / app.time_s)
            per_invocation = (sum(overheads) / len(app.invocations)
                              if overheads else 0.0)
            stats[abbrev] = (per_invocation, profiling_share)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    for abbrev, (per_invocation_s, share) in stats.items():
        # Paper: 1-2 us average; allow up to 100 us for interpreted
        # Python (still negligible against millisecond kernels).
        assert per_invocation_s < 100e-6, abbrev
        assert share < 0.6, abbrev
        benchmark.extra_info[abbrev] = (
            f"{per_invocation_s * 1e6:.2f}us/invocation, "
            f"profiling {share * 100:.1f}% of runtime")
        print(f"{abbrev}: scheduling {per_invocation_s * 1e6:6.2f} us per "
              f"invocation (paper: 1-2 us), profiling phases "
              f"{share * 100:5.1f}% of simulated runtime")
