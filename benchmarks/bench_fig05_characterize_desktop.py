"""Figure 5: desktop power characterization (8 categories, 6th-order fits).

Paper shape: CPU-short categories produce convex curves (power drops
fast from the CPU level, then flattens near the GPU level); CPU-long
ones stay high before falling; memory curves sit above compute curves;
and the fitted sixth-order polynomials track the sweeps closely.
"""

from repro.core.categories import category_from_codes
from repro.harness.figures import regenerate_figure_5


def test_fig05_characterize_desktop(benchmark):
    result = benchmark.pedantic(regenerate_figure_5, rounds=1, iterations=1)
    curves = result.characterization

    cll = curves.curve_for(category_from_codes("C-LL"))
    css = curves.curve_for(category_from_codes("C-SS"))
    mll = curves.curve_for(category_from_codes("M-LL"))

    # CPU-alone compute ~45 W, GPU-alone ~30 W (Section 2).
    assert 40.0 < cll.power(0.0) < 52.0
    assert 26.0 < cll.power(1.0) < 37.0
    # Memory-bound co-execution peaks above compute-bound (63 vs 55 W).
    assert mll.power(0.4) > cll.power(0.4)
    # CPU-short shape: dips below the CPU-alone endpoint early and
    # lands well below it at full offload.  (The paper's single-run
    # probes show a stronger convex dip; we characterize short kernels
    # in their repeated steady state, which softens the mid-sweep -
    # see EXPERIMENTS.md.)
    assert css.power(0.3) < css.power(0.0)
    assert css.power(1.0) < css.power(0.0) - 8.0
    # All eight fits are tight.
    for code in ("C-SS", "C-SL", "C-LS", "C-LL",
                 "M-SS", "M-SL", "M-LS", "M-LL"):
        curve = curves.curve_for(category_from_codes(code))
        assert curve.order == 6
        assert curve.fit_residual_rms() < 4.0, code

    benchmark.extra_info.update({
        "cpu_alone_w (paper ~45)": round(cll.power(0.0), 1),
        "gpu_alone_w (paper ~30)": round(cll.power(1.0), 1),
        "memory_peak_w (paper ~63)": round(max(
            mll.power(a / 20) for a in range(21)), 1),
    })
    print(result.render())
