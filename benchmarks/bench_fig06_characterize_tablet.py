"""Figure 6: Bay Trail power characterization.

Paper shape: curves are mostly concave because the tablet's GPU draws
more power than its CPU; compute-bound work draws ~1.5 W CPU-alone and
~2 W GPU-alone; memory-bound work draws *less* than compute-bound
(0.7 W / 1.3 W) - the reverse of the desktop.
"""

from repro.core.categories import category_from_codes
from repro.harness.figures import regenerate_figure_6


def test_fig06_characterize_tablet(benchmark):
    result = benchmark.pedantic(regenerate_figure_6, rounds=1, iterations=1)
    curves = result.characterization

    cll = curves.curve_for(category_from_codes("C-LL"))
    mll = curves.curve_for(category_from_codes("M-LL"))

    # Paper's endpoint calibration.
    assert 1.2 < cll.power(0.0) < 1.9     # ~1.5 W CPU compute
    assert 1.6 < cll.power(1.0) < 2.5     # ~2 W GPU compute
    assert 0.45 < mll.power(0.0) < 1.0    # ~0.7 W CPU memory
    assert 1.0 < mll.power(1.0) < 1.7     # ~1.3 W GPU memory
    # Memory below compute everywhere at the endpoints.
    assert mll.power(0.0) < cll.power(0.0)
    assert mll.power(1.0) < cll.power(1.0)
    # Concavity: mid-sweep co-execution above the CPU-alone endpoint.
    assert cll.power(0.5) > cll.power(0.0)

    benchmark.extra_info.update({
        "cpu_compute_w (paper ~1.5)": round(cll.power(0.0), 2),
        "gpu_compute_w (paper ~2.0)": round(cll.power(1.0), 2),
        "cpu_memory_w (paper ~0.7)": round(mll.power(0.0), 2),
        "gpu_memory_w (paper ~1.3)": round(mll.power(1.0), 2),
    })
    print(result.render())
