"""Extension: the ED^2 metric the paper defines but never evaluates.

Section 1 introduces the energy-delay-squared product for "data-center
and HPC applications [where] execution time is so important", yet the
evaluation only covers energy and EDP.  EAS claims to optimize *any*
metric expressible from power and time - so here is the missing
experiment: the desktop strategy comparison under ED^2.

Expected structure: weighting time quadratically pushes every optimum
toward the performance-optimal split, so PERF closes most of its
Fig. 9 gap, CPU-alone gets even worse, and EAS remains near the
Oracle.
"""

from repro.core.metrics import ED2
from repro.harness.figures import _cached_sweep
from repro.harness.suite import evaluate_suite
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import suite_workloads

#: Subset keeps the bench under a minute while spanning the taxonomy.
WORKLOADS = ("CC", "BS", "NB", "SL", "SM", "FD")


def test_extension_ed2(benchmark):
    spec = haswell_desktop()
    workloads = [w for w in suite_workloads(tablet=False)
                 if w.abbrev in WORKLOADS]

    def run():
        sweeps = {w.abbrev: _cached_sweep(spec, w, tablet=False)
                  for w in workloads}
        return evaluate_suite(spec, workloads, ED2, sweeps=sweeps)

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)

    eas = evaluation.average_efficiency_pct("EAS")
    perf = evaluation.average_efficiency_pct("PERF")
    cpu = evaluation.average_efficiency_pct("CPU")
    gpu = evaluation.average_efficiency_pct("GPU")

    assert eas > 80.0
    assert eas > cpu
    assert cpu < 40.0          # quadratic time weighting punishes CPU-alone
    # EAS must remain competitive with the best baseline under the
    # paper's third metric.
    assert eas >= max(perf, gpu) - 8.0

    benchmark.extra_info.update({
        "CPU": round(cpu, 1), "GPU": round(gpu, 1),
        "PERF": round(perf, 1), "EAS": round(eas, 1),
    })
    print(f"ED^2 efficiency vs Oracle: CPU {cpu:.1f}%, GPU {gpu:.1f}%, "
          f"PERF {perf:.1f}%, EAS {eas:.1f}%")
    for w in evaluation.workloads():
        print(f"  {w}: EAS {evaluation.outcome(w, 'EAS').efficiency_pct:.1f}%"
              f" (alpha {evaluation.outcome(w, 'EAS').alpha:.2f})")
