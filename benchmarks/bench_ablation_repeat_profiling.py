"""Ablation: repeated profiling (the size-based strategy of [12]).

Fig. 7 repeats OnlineProfile with growing chunks for up to half the
iterations, with our convergence-based early stop.  This ablation
compares: one fixed-size round only, the default (converging rounds),
and exhaustive profiling of the full half with no early stop.
"""

from repro.core.scheduler import SchedulerConfig

from benchmarks._ablation_common import mean_efficiency


def test_ablation_repeat_profiling(benchmark):
    def run():
        one_round = SchedulerConfig(profile_fraction=0.01, chunk_growth=1.0)
        default = SchedulerConfig()
        exhaustive = SchedulerConfig(convergence_tolerance=-1.0)
        return {
            "single round": mean_efficiency(config=one_round),
            "converging (default)": mean_efficiency(config=default),
            "full half, no stop": mean_efficiency(config=exhaustive),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Repeated profiling beats a single fixed-size round.
    assert results["converging (default)"] >= results["single round"] - 2.0
    # Early stopping does not cost much against exhaustive profiling.
    assert (results["converging (default)"]
            >= results["full half, no stop"] - 6.0)
    assert results["converging (default)"] > 85.0

    for name, eff in results.items():
        benchmark.extra_info[name] = round(eff, 1)
        print(f"{name:22s}: EAS efficiency {eff:5.1f}%")
