"""Figure 11: Bay Trail EDP efficiency vs Oracle.

Paper: EAS averages 93.2% - 4.4% better than PERF, 19.6% better than
GPU-alone, 85.9% better than CPU-alone.  On this platform GPU-alone is
*not* a good strategy (its GPU is power-hungry and only moderately
faster), unlike the desktop.
"""

from repro.harness.figures import regenerate_figure_11


def test_fig11_tablet_edp(benchmark):
    result = benchmark.pedantic(regenerate_figure_11, rounds=1, iterations=1)

    cpu = result.average("CPU")
    gpu = result.average("GPU")
    perf = result.average("PERF")
    eas = result.average("EAS")

    assert eas > 85.0                    # paper 93.2
    assert eas >= perf - 1.0             # paper: EAS 4.4% over PERF
    assert eas - gpu > 10.0              # paper: 19.6% over GPU
    assert eas - cpu > 35.0              # paper: 85.9% over CPU
    # GPU-alone is much weaker here than on the desktop (Fig. 9).
    assert gpu < 85.0

    benchmark.extra_info.update({
        "EAS_avg (paper 93.2)": round(eas, 1),
        "EAS_minus_GPU (paper 19.6)": round(eas - gpu, 1),
        "EAS_minus_PERF (paper 4.4)": round(eas - perf, 1),
    })
    print(result.render())
