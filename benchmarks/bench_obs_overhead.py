"""Disabled observability is free: <1% overhead on a fig-9-style run.

The PR-2 acceptance criterion.  Instrumentation points stay in the
code permanently, so the cost that matters is the *disabled* path:
one attribute load / no-op method call per hook site, against the
shared :data:`~repro.obs.observer.NULL_OBSERVER`, plus the always-on
audit bookkeeping (one :class:`DecisionRecord` per invocation).

Measured two ways over the figure-9 workload set (the full Table-1
suite under EAS with the EDP objective on the desktop):

1. **analytic bound** - count the hook executions of an identical run
   with an *enabled* observer, measure the disabled path's per-call
   cost and the per-record audit cost in tight loops, and bound the
   total against the run's wall time;
2. **paired wall times** - the same run with and without an enabled
   observer, reported in ``extra_info`` (not asserted: enabled
   observation is *allowed* to cost something).
"""

import time

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.records import DecisionRecord
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import all_workloads


def _run_suite(spec, characterization, observer=None):
    """The EAS column of figure 9: every workload, EDP objective."""
    runs = []
    for workload in all_workloads():
        runs.append(run_application(
            spec, workload,
            EnergyAwareScheduler(characterization, EDP), "eas",
            observer=observer))
    return runs


def _disabled_costs_s() -> "tuple[float, float]":
    """(guard, no-op call) per-execution costs of the disabled path."""
    obs = NULL_OBSERVER
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        if obs.enabled:  # the guard every hot path pays
            pass
    t_guard = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        obs.inc("x")     # the unguarded no-op calls pay this
    t_noop = (time.perf_counter() - t0) / n
    return t_guard, t_noop


def _record_cost_s() -> float:
    """Per-invocation cost of the always-on decision audit."""
    n = 20_000
    sink = []
    t0 = time.perf_counter()
    for i in range(n):
        sink.append(DecisionRecord(
            exit_path="table-hit", kernel="k", n_items=1e6, alpha=0.5,
            category_code="C-LS", from_table=True, table_hit=True,
            decision_overhead_s=1e-6, sim_time_s=float(i)))
        if len(sink) > 1000:
            sink.clear()
    return (time.perf_counter() - t0) / n


def _hook_executions(observer: Observer) -> "tuple[int, int]":
    """(guards, no-op calls) executed by the disabled path of one run.

    Counted from the enabled twin run, generously: the disabled path
    pays at most 6 ``enabled`` guards per invocation (scheduler entry
    and exit-path bookkeeping, runtime entry and MSR read,
    work-stealing drain, slack for one more), 2 per SoC phase, and 1
    per work-stealing run; unguarded no-op calls are at most 2 per
    invocation (the invocation counter and the decision hand-off).
    Everything else - spans, events, metric writes - sits behind a
    guard and costs nothing extra when disabled.
    """
    counters = observer.metrics.snapshot()["counters"]
    phases = int(counters.get("soc.phases", 0))
    invocations = int(counters.get("runtime.invocations", 0))
    ws_runs = int(counters.get("ws.runs", 0))
    guards = 6 * invocations + 2 * phases + ws_runs
    noops = 2 * invocations
    return guards, noops


def test_disabled_observability_overhead_under_1pct(benchmark):
    spec = haswell_desktop()
    characterization = get_characterization(spec)

    results = benchmark.pedantic(
        lambda: _run_suite(spec, characterization),
        rounds=1, iterations=1, warmup_rounds=0)
    disabled_s = benchmark.stats.stats.data[0]

    # The identical run, observed: counts every hook execution.
    observer = Observer()
    t0 = time.perf_counter()
    observed = _run_suite(spec, characterization, observer=observer)
    enabled_s = time.perf_counter() - t0

    # Observation must not change the schedule (same simulated runs).
    for bare, obs_run in zip(results, observed):
        assert obs_run.time_s == bare.time_s
        assert obs_run.energy_j == bare.energy_j

    guards, noops = _hook_executions(observer)
    records = len(observer.decisions)
    assert guards > 0 and records > 0
    t_guard, t_noop = _disabled_costs_s()
    overhead_s = (guards * t_guard + noops * t_noop
                  + records * _record_cost_s())
    ratio = overhead_s / disabled_s
    assert ratio < 0.01, (
        f"disabled-observability bound {overhead_s * 1e3:.3f}ms is "
        f"{ratio:.2%} of the {disabled_s * 1e3:.1f}ms suite run")

    benchmark.extra_info.update({
        "guards": guards,
        "decision_records": records,
        "disabled_overhead_bound_pct": round(100 * ratio, 4),
        "enabled_vs_disabled": round(enabled_s / disabled_s, 3),
    })
