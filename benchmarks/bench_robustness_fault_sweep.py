"""Robustness: the full chaos campaign (EAS under swept fault injection).

Not a paper figure - this is the acceptance harness for the resilient
runtime (see docs/ROBUSTNESS.md).  The default campaign sweeps the
fault level over {0.0, 0.1, 0.25, 0.5} across four suite workloads and
asserts the four robustness invariants:

1. no unhandled exceptions at any fault level;
2. every invocation processes all N items (ground-truth counters);
3. EAS-under-faults EDP <= clean CPU-alone EDP in every cell - at
   worst the scheduler degrades *to* the CPU, never below it;
4. byte-identical results on a same-seed rerun.
"""

from repro.harness.chaos import run_chaos_campaign


def test_robustness_fault_sweep(benchmark):
    result = benchmark.pedantic(run_chaos_campaign, rounds=1, iterations=1)

    assert result.all_ok
    assert result.all_items_processed
    assert result.edp_bounded
    for cell in result.cells:
        assert cell.edp <= result.cpu_edp(cell.workload)

    # The sweep must actually exercise the fault machinery.
    totals = result.total_fault_counts()
    assert sum(totals.values()) > 1000
    assert "gpu-launch-fail" in totals and "msr-glitch" in totals

    # Determinism: a second full campaign reproduces every byte.
    rerun = run_chaos_campaign()
    assert rerun.fingerprint() == result.fingerprint()

    worst = max((c.edp / result.cpu_edp(c.workload)
                 for c in result.cells if c.ok), default=float("nan"))
    benchmark.extra_info.update({
        "cells": len(result.cells),
        "injected_faults": sum(totals.values()),
        "worst_EDP_vs_CPU": round(worst, 3),
        "fingerprint": result.fingerprint()[:16],
    })
    print(result.render())
