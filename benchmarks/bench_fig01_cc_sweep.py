"""Figure 1: Connected Components energy/runtime vs GPU offload percent.

Paper shape: minimum energy at a high offload ratio (90%), best
performance at a balanced one (60%) - demonstrating that neither the
energy- nor the performance-optimal distribution is single-device.
"""

from repro.harness.figures import regenerate_figure_1


def test_fig01_cc_sweep(benchmark):
    result = benchmark.pedantic(regenerate_figure_1, rounds=1, iterations=1)

    # Best performance at a balanced split (paper: 60%).
    assert 0.3 <= result.best_perf_alpha <= 0.8
    # Minimum energy GPU-heavy, at or above the performance optimum
    # (paper: 90% vs 60%).
    assert result.min_energy_alpha >= result.best_perf_alpha
    assert result.min_energy_alpha >= 0.8
    # The sweep is a genuine trade-off curve: single-device endpoints
    # are strictly worse than the interior optimum on both axes.
    assert min(result.times_s) < result.times_s[0]
    assert min(result.times_s) < result.times_s[-1]
    assert min(result.energies_j) < result.energies_j[0]

    benchmark.extra_info.update({
        "min_energy_alpha (paper 0.9)": result.min_energy_alpha,
        "best_perf_alpha (paper 0.6)": result.best_perf_alpha,
    })
    print(result.render())
