"""Ablation: GPU_PROFILE_SIZE.

The paper sizes the profiling chunk to the GPU's hardware parallelism
(2048 on the desktop's 2240-lane GPU): smaller chunks leave EUs idle
and mis-measure R_G; much larger ones waste no accuracy but commit
more work before the first decision.
"""

from repro.core.scheduler import SchedulerConfig

from benchmarks._ablation_common import mean_efficiency


def test_ablation_profile_size(benchmark):
    def run():
        return {size: mean_efficiency(
                    config=SchedulerConfig(gpu_profile_size=size))
                for size in (256, 1024, 2048, 8192)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # The paper's parallelism-matched choice is competitive with every
    # alternative and clearly usable.
    best = max(results.values())
    assert results[2048] >= best - 6.0
    assert results[2048] > 85.0

    for size, eff in results.items():
        benchmark.extra_info[f"size_{size}"] = round(eff, 1)
        print(f"GPU_PROFILE_SIZE {size:5d}: EAS efficiency {eff:5.1f}%")
