"""Ablation: the online classifier's two thresholds.

The paper fixes memory-boundedness at an L3-miss/load-store ratio of
0.33 and short/long at 100 ms, noting both "were sufficient for both
platforms and for the twelve ... workloads" and leaving more accurate
prediction to future work.  This ablation perturbs each threshold and
measures the downstream EAS efficiency.
"""

from repro.core.classification import OnlineClassifier
from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.figures import _cached_sweep
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

WORKLOADS = ("NB", "BS", "CC", "SL")


def mean_efficiency(classifier: OnlineClassifier) -> float:
    spec = haswell_desktop()
    characterization = get_characterization(spec)
    values = []
    for abbrev in WORKLOADS:
        workload = workload_by_abbrev(abbrev)
        sweep = _cached_sweep(spec, workload, tablet=False)
        scheduler = EnergyAwareScheduler(characterization, EDP,
                                         classifier=classifier)
        run = run_application(spec, workload, scheduler, "EAS")
        oracle = sweep.oracle(EDP).metric_value(EDP)
        values.append(100.0 * oracle / run.metric_value(EDP))
    return sum(values) / len(values)


def test_ablation_classification_thresholds(benchmark):
    def run():
        return {
            "paper (0.33, 100ms)": mean_efficiency(OnlineClassifier()),
            "miss ratio 0.15": mean_efficiency(
                OnlineClassifier(memory_threshold=0.15)),
            "miss ratio 0.60": mean_efficiency(
                OnlineClassifier(memory_threshold=0.60)),
            "short/long 10ms": mean_efficiency(
                OnlineClassifier(short_long_threshold_s=0.010)),
            "short/long 1s": mean_efficiency(
                OnlineClassifier(short_long_threshold_s=1.0)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = results["paper (0.33, 100ms)"]
    assert paper > 85.0
    # The paper's settings are competitive with every perturbation.
    assert paper >= max(results.values()) - 5.0

    for name, eff in results.items():
        benchmark.extra_info[name] = round(eff, 1)
        print(f"{name:22s}: EAS efficiency {eff:5.1f}%")
