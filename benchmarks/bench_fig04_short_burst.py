"""Figure 4: ten short GPU bursts on a memory-bound desktop workload.

Paper shape: steady CPU-phase package power near 60 W; during each
brief GPU execution the PCU's activation throttle drops the package
below ~40 W.  This is the behaviour that motivates the taxonomy's
short/long axis.
"""

import re

from repro.harness.figures import regenerate_figure_4


def test_fig04_short_burst(benchmark):
    result = benchmark.pedantic(regenerate_figure_4, rounds=1, iterations=1)

    steady = float(re.search(r"([\d.]+) W", result.notes[0]).group(1))
    dip = float(re.search(r"([\d.]+) W", result.notes[1]).group(1))
    n_bursts = int(re.search(r"(\d+)", result.notes[2]).group(1))

    assert n_bursts == 10
    assert steady > 48.0            # paper: ~60 W
    assert dip < 40.0               # paper: < ~40 W
    assert steady - dip > 12.0      # a pronounced dip, not noise

    benchmark.extra_info.update({
        "steady_w (paper ~60)": steady,
        "burst_dip_w (paper <40)": dip,
    })
    print(result.render())
