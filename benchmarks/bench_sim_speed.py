"""Simulator clock-mode speed: event-driven fast-forward vs exact ticking.

The full Table-1 suite runs under EAS on both platforms in both clock
modes.  For each (platform, mode) the bench records suite wall-clock,
total simulator ticks and macro-steps (from the ``soc.ticks`` /
``soc.macro_steps`` observability counters), and per-phase averages,
then writes everything to ``BENCH_sim.json`` (path overridable via
``$BENCH_SIM_JSON``).

The speedup assertion targets the *tick-dense* configuration - the
tablet suite, whose phases run thousands of ticks each and fast-forward
almost entirely.  The desktop suite is measured and reported with no
assertion attached: its many-launch workloads average only a handful of
ticks per phase and its long phases spend most of their time over the
package power cap, where per-sample feedback is sequentially
irreducible - see docs/PERFORMANCE.md for why that floor exists.

``$SIM_SPEED_MIN_SPEEDUP`` (default 5.0; CI uses 3.0 for noisy shared
runners) sets the tick-dense assertion threshold.

Also measured here: the memory footprint of the slotted per-tick
dataclasses (``TraceSample``), satellite of the same optimisation pass.
"""

import json
import os
import sys
import time
from dataclasses import replace

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization
from repro.obs.observer import Observer
from repro.soc.spec import baytrail_tablet, haswell_desktop
from repro.soc.trace import TraceSample
from repro.workloads.registry import suite_workloads

OUTPUT_PATH = os.environ.get("BENCH_SIM_JSON", "BENCH_sim.json")
MIN_SPEEDUP = float(os.environ.get("SIM_SPEED_MIN_SPEEDUP", "5.0"))

#: Relative agreement required between the modes' end-to-end results -
#: the speedup is meaningless if fast mode computed something else.
REL_TOL = 1e-6


def _run_suite(base_spec, tablet, tick_mode):
    """EAS over the platform's Table-1 suite in one clock mode."""
    spec = replace(base_spec, tick_mode=tick_mode)
    characterization = get_characterization(base_spec)
    totals = {"ticks": 0, "macro_steps": 0, "phases": 0}
    per_workload = {}
    started = time.perf_counter()
    for workload in suite_workloads(tablet=tablet):
        observer = Observer()
        scheduler = EnergyAwareScheduler(characterization, EDP)
        run = run_application(spec, workload, scheduler, "EAS",
                              tablet=tablet, observer=observer)
        counters = observer.metrics.snapshot()["counters"]
        for key in totals:
            totals[key] += int(counters.get(f"soc.{key}", 0))
        per_workload[workload.abbrev] = {
            "time_s": run.time_s, "energy_j": run.energy_j}
    wall_s = time.perf_counter() - started
    phases = max(1, totals["phases"])
    return {
        "wall_s": round(wall_s, 3),
        "ticks": totals["ticks"],
        "macro_steps": totals["macro_steps"],
        "phases": totals["phases"],
        "ticks_per_phase": round(totals["ticks"] / phases, 2),
        "macro_steps_per_phase": round(totals["macro_steps"] / phases, 2),
        "per_workload": per_workload,
    }


def _check_equivalence(exact, fast, label):
    for abbrev, ex in exact["per_workload"].items():
        fa = fast["per_workload"][abbrev]
        for field in ("time_s", "energy_j"):
            scale = max(abs(ex[field]), abs(fa[field]), 1e-12)
            rel = abs(ex[field] - fa[field]) / scale
            assert rel < REL_TOL, (
                f"{label}/{abbrev}: {field} diverged by {rel:.2e} "
                f"(exact {ex[field]!r}, fast {fa[field]!r})")


def _trace_sample_memory():
    """Per-sample footprint of the (slotted on 3.10+) trace dataclass."""
    sample = TraceSample(t=0.0, dt=1e-3, package_w=30.0, cpu_w=20.0,
                         gpu_w=5.0, uncore_w=3.0, cpu_freq_hz=3.9e9,
                         gpu_freq_hz=1.2e9, gpu_active=True)
    slotted = not hasattr(sample, "__dict__")
    bytes_per_sample = sys.getsizeof(sample)
    if not slotted:
        bytes_per_sample += sys.getsizeof(sample.__dict__)
    return {
        "slotted": slotted,
        "bytes_per_sample": bytes_per_sample,
        "python": ".".join(map(str, sys.version_info[:3])),
    }


def _compare_platform(base_spec, tablet):
    exact = _run_suite(base_spec, tablet, "exact")
    fast = _run_suite(base_spec, tablet, "fast")
    _check_equivalence(exact, fast, base_spec.name)
    speedup = exact["wall_s"] / max(fast["wall_s"], 1e-9)
    return {"exact": exact, "fast": fast, "speedup": round(speedup, 2)}


def test_sim_speed(benchmark):
    report = {
        "suite": "EAS over the Table-1 workloads, both clock modes",
        "min_speedup_tick_dense": MIN_SPEEDUP,
        "platforms": {},
        "trace_sample_memory": _trace_sample_memory(),
    }

    def _measure():
        report["platforms"]["tablet"] = _compare_platform(
            baytrail_tablet(), tablet=True)
        report["platforms"]["desktop"] = _compare_platform(
            haswell_desktop(), tablet=False)
        return report

    benchmark.pedantic(_measure, rounds=1, iterations=1, warmup_rounds=0)

    with open(OUTPUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    tablet = report["platforms"]["tablet"]
    desktop = report["platforms"]["desktop"]
    for name, platform in report["platforms"].items():
        benchmark.extra_info[f"{name}_speedup"] = platform["speedup"]
        benchmark.extra_info[f"{name}_ticks_exact"] = (
            platform["exact"]["ticks"])
        benchmark.extra_info[f"{name}_ticks_fast"] = platform["fast"]["ticks"]

    # Fast mode must actually fast-forward: fewer scalar ticks, real
    # macro-steps, on both platforms.
    for platform in (tablet, desktop):
        assert platform["fast"]["ticks"] < platform["exact"]["ticks"]
        assert platform["fast"]["macro_steps"] > 0
        assert platform["exact"]["macro_steps"] == 0

    # The headline assertion, on the tick-dense configuration.
    assert tablet["speedup"] >= MIN_SPEEDUP, (
        f"tablet suite speedup {tablet['speedup']}x below the "
        f"{MIN_SPEEDUP}x floor (exact {tablet['exact']['wall_s']}s, "
        f"fast {tablet['fast']['wall_s']}s)")
