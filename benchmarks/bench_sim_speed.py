"""Simulator clock-mode speed: exact vs fast vs bounded.

The full Table-1 suite runs under EAS on both platforms in all three
clock modes.  For each (platform, mode) the bench records suite
wall-clock, total simulator ticks, macro-steps and phase replays (from
the ``soc.*`` observability counters), per-workload wall-clock and
results, and - for the bounded mode - the maximum observed error
against the exact reference, which must stay inside the platform's
``bounded_tol`` contract.  Everything lands in ``BENCH_sim.json``
(path overridable via ``$BENCH_SIM_JSON``).

Speedup gates (see docs/PERFORMANCE.md for the full analysis):

* ``$SIM_SPEED_MIN_SPEEDUP`` (default 5.0) - the tick-dense tablet
  suite, where fast-forwarding and phase replay pay off massively.
* ``$SIM_SPEED_MIN_DESKTOP`` (default 0.7) - the desktop suite, a
  *no-regression floor*, not a speedup target.  The desktop's
  many-launch workloads ramp the PCU continuously (frequencies never
  recur, phases never settle, spans stay under the batch minimum), so
  no memoization/replay/macro-step lever applies; accelerated modes
  run at parity with exact there, and the floor only guards against an
  accelerated mode becoming an outright slowdown beyond machine noise.

Workload construction and platform characterization are prewarmed
before any timing, so wall-clock measures simulation, not setup.
"""

import json
import os
import sys
import time
from dataclasses import replace

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization
from repro.obs.observer import Observer
from repro.soc.spec import baytrail_tablet, haswell_desktop
from repro.soc.trace import TraceSample
from repro.workloads.registry import suite_workloads

OUTPUT_PATH = os.environ.get("BENCH_SIM_JSON", "BENCH_sim.json")
MIN_SPEEDUP = float(os.environ.get("SIM_SPEED_MIN_SPEEDUP", "5.0"))
MIN_DESKTOP = float(os.environ.get("SIM_SPEED_MIN_DESKTOP", "0.7"))

#: Contract held against the exact reference: ``fast`` promises this
#: relative agreement outright; ``bounded`` promises the platform's
#: ``bounded_tol`` (same default).
REL_TOL = 1e-6

MODES = ("exact", "fast", "bounded")


def _prewarm(base_spec, tablet):
    """Construct every workload and the characterization table before
    the clock starts: the bench times simulation, not setup."""
    get_characterization(base_spec)
    return [(w, w.make_kernel(tablet=tablet),
             list(w.invocations(tablet=tablet)))
            for w in suite_workloads(tablet=tablet)]


def _run_suite(base_spec, tablet, tick_mode):
    """EAS over the platform's Table-1 suite in one clock mode."""
    spec = replace(base_spec, tick_mode=tick_mode)
    characterization = get_characterization(base_spec)
    totals = {"ticks": 0, "macro_steps": 0, "phases": 0, "phase_replays": 0}
    per_workload = {}
    started = time.perf_counter()
    for workload in suite_workloads(tablet=tablet):
        observer = Observer()
        scheduler = EnergyAwareScheduler(characterization, EDP)
        w_started = time.perf_counter()
        run = run_application(spec, workload, scheduler, "EAS",
                              tablet=tablet, observer=observer)
        w_wall = time.perf_counter() - w_started
        counters = observer.metrics.snapshot()["counters"]
        for key in totals:
            totals[key] += int(counters.get(f"soc.{key}", 0))
        per_workload[workload.abbrev] = {
            "time_s": run.time_s, "energy_j": run.energy_j,
            "wall_s": round(w_wall, 4)}
    wall_s = time.perf_counter() - started
    phases = max(1, totals["phases"])
    return {
        "wall_s": round(wall_s, 3),
        "ticks": totals["ticks"],
        "macro_steps": totals["macro_steps"],
        "phases": totals["phases"],
        "phase_replays": totals["phase_replays"],
        "ticks_per_phase": round(totals["ticks"] / phases, 2),
        "per_workload": per_workload,
    }


def _max_rel_error(exact, candidate):
    """Worst per-workload divergence from exact, in the contract's
    hybrid absolute/relative form."""
    worst = 0.0
    for abbrev, ex in exact["per_workload"].items():
        cand = candidate["per_workload"][abbrev]
        for field in ("time_s", "energy_j"):
            scale = max(1.0, abs(ex[field]))
            worst = max(worst, abs(ex[field] - cand[field]) / scale)
    return worst


def _trace_sample_memory():
    """Per-sample footprint of the (slotted on 3.10+) trace dataclass."""
    sample = TraceSample(t=0.0, dt=1e-3, package_w=30.0, cpu_w=20.0,
                         gpu_w=5.0, uncore_w=3.0, cpu_freq_hz=3.9e9,
                         gpu_freq_hz=1.2e9, gpu_active=True)
    slotted = not hasattr(sample, "__dict__")
    bytes_per_sample = sys.getsizeof(sample)
    if not slotted:
        bytes_per_sample += sys.getsizeof(sample.__dict__)
    return {
        "slotted": slotted,
        "bytes_per_sample": bytes_per_sample,
        "python": ".".join(map(str, sys.version_info[:3])),
    }


def _compare_platform(base_spec, tablet):
    _prewarm(base_spec, tablet)
    modes = {mode: _run_suite(base_spec, tablet, mode) for mode in MODES}
    exact = modes["exact"]
    report = {"modes": modes, "speedup": {}, "max_rel_error": {}}
    for mode in ("fast", "bounded"):
        candidate = modes[mode]
        error = _max_rel_error(exact, candidate)
        tol = REL_TOL if mode == "fast" else base_spec.bounded_tol
        assert error <= tol, (
            f"{base_spec.name}/{mode}: end-to-end divergence {error:.2e} "
            f"exceeds the {tol:.0e} contract - the speedup is "
            f"meaningless if the mode computed something else")
        report["max_rel_error"][mode] = error
        report["speedup"][mode] = round(
            exact["wall_s"] / max(candidate["wall_s"], 1e-9), 2)
    return report


def test_sim_speed(benchmark):
    report = {
        "suite": "EAS over the Table-1 workloads, all three clock modes",
        "min_speedup_tick_dense": MIN_SPEEDUP,
        "min_speedup_desktop_floor": MIN_DESKTOP,
        "platforms": {},
        "trace_sample_memory": _trace_sample_memory(),
    }

    def _measure():
        report["platforms"]["tablet"] = _compare_platform(
            baytrail_tablet(), tablet=True)
        report["platforms"]["desktop"] = _compare_platform(
            haswell_desktop(), tablet=False)
        return report

    benchmark.pedantic(_measure, rounds=1, iterations=1, warmup_rounds=0)

    with open(OUTPUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    tablet = report["platforms"]["tablet"]
    desktop = report["platforms"]["desktop"]
    for name, platform in report["platforms"].items():
        for mode in ("fast", "bounded"):
            benchmark.extra_info[f"{name}_{mode}_speedup"] = (
                platform["speedup"][mode])
        benchmark.extra_info[f"{name}_ticks_exact"] = (
            platform["modes"]["exact"]["ticks"])

    # The accelerated modes must actually accelerate structurally:
    # fewer scalar ticks and real macro-steps on both platforms, and
    # phase replays only in bounded mode.
    for platform in (tablet, desktop):
        exact = platform["modes"]["exact"]
        for mode in ("fast", "bounded"):
            assert platform["modes"][mode]["ticks"] < exact["ticks"]
            assert platform["modes"][mode]["macro_steps"] > 0
        assert exact["macro_steps"] == 0
        assert exact["phase_replays"] == 0
        assert platform["modes"]["fast"]["phase_replays"] == 0

    # Headline gate: the tick-dense tablet suite, where phase replay
    # makes bounded the fastest mode.
    best_tablet = max(tablet["speedup"].values())
    assert best_tablet >= MIN_SPEEDUP, (
        f"tablet suite best speedup {best_tablet}x below the "
        f"{MIN_SPEEDUP}x floor "
        f"(exact {tablet['modes']['exact']['wall_s']}s, "
        f"fast {tablet['modes']['fast']['wall_s']}s, "
        f"bounded {tablet['modes']['bounded']['wall_s']}s)")

    # Desktop no-regression floor: accelerated modes run at parity on
    # the ramp-dominated desktop suite (see docs/PERFORMANCE.md); the
    # floor flags only a real slowdown beyond machine noise.
    best_desktop = max(desktop["speedup"].values())
    assert best_desktop >= MIN_DESKTOP, (
        f"desktop suite best speedup {best_desktop}x fell below the "
        f"{MIN_DESKTOP}x no-regression floor "
        f"(exact {desktop['modes']['exact']['wall_s']}s, "
        f"fast {desktop['modes']['fast']['wall_s']}s, "
        f"bounded {desktop['modes']['bounded']['wall_s']}s)")
