"""Extension: EAS generalization beyond the paper's twelve benchmarks.

The paper evaluates hand-picked applications; a black-box scheduler
should also hold up on workloads nobody tuned it for.  This benchmark
draws a reproducible suite of synthetic applications spanning the
taxonomy (boundedness x irregularity x device lean x launch structure)
and measures EAS's Oracle-relative EDP efficiency across them.
"""

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import get_characterization, sweep_alphas
from repro.soc.spec import haswell_desktop
from repro.workloads.synthetic import generate_suite

SUITE_SIZE = 12


def test_extension_synthetic_suite(benchmark):
    spec = haswell_desktop()
    characterization = get_characterization(spec)
    suite = generate_suite(SUITE_SIZE, seed=42)

    def run():
        efficiencies = {}
        for workload in suite:
            sweep = sweep_alphas(spec, workload)
            scheduler = EnergyAwareScheduler(characterization, EDP)
            eas = run_application(spec, workload, scheduler, "EAS")
            oracle = sweep.oracle(EDP).metric_value(EDP)
            efficiencies[workload.abbrev] = (
                100.0 * oracle / eas.metric_value(EDP), eas.final_alpha)
        return efficiencies

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    values = sorted(eff for eff, _ in results.values())
    mean = sum(values) / len(values)
    for name, (eff, alpha) in sorted(results.items()):
        print(f"{name:7s}: efficiency {eff:5.1f}% (alpha {alpha:.2f})")
    print(f"mean {mean:.1f}%, min {values[0]:.1f}%, median "
          f"{values[len(values) // 2]:.1f}%")

    benchmark.extra_info.update({
        "mean": round(mean, 1),
        "min": round(values[0], 1),
        "median": round(values[len(values) // 2], 1),
    })
    # Generalization bar: the untuned suite keeps a healthy mean and
    # no workload collapses.  (The weakest draws are short-launch
    # memory workloads whose device lean sits far from their category
    # probe's - the known single-curve-per-category limitation.)
    assert mean > 72.0
    assert values[0] > 40.0
