"""Figure 10: desktop total-energy efficiency vs Oracle.

Paper averages: GPU 95.8%, PERF 70.4%, EAS 97.2%.  The signature
inversion versus Fig. 9: for pure energy, GPU-alone is near-optimal
while best-performance partitioning pays a heavy power premium.
"""

from repro.harness.figures import regenerate_figure_10


def test_fig10_desktop_energy(benchmark):
    result = benchmark.pedantic(regenerate_figure_10, rounds=1, iterations=1)

    cpu = result.average("CPU")
    gpu = result.average("GPU")
    perf = result.average("PERF")
    eas = result.average("EAS")

    # The inversion: GPU beats PERF for energy (opposite of nothing -
    # but the gap versus Fig. 9 is the story).
    assert gpu > perf
    assert eas > gpu               # EAS still the best strategy
    assert eas > 90.0              # paper 97.2
    assert 85.0 < gpu < 100.0      # paper 95.8
    assert perf < 90.0             # paper 70.4
    assert cpu < 60.0
    # FD: EAS keeps the CPU-biased workload at alpha 0 (Section 5).
    assert result.evaluation.outcome("FD", "EAS").alpha == 0.0

    benchmark.extra_info.update({
        "GPU_avg (paper 95.8)": round(gpu, 1),
        "PERF_avg (paper 70.4)": round(perf, 1),
        "EAS_avg (paper 97.2)": round(eas, 1),
    })
    print(result.render())
