"""Ablation: polynomial order of the power characterization curves.

The paper found "a sixth-order polynomial was a good fit".  This
ablation fits the same sweeps with orders 1, 2, 4 and 6 and measures
(a) fit quality and (b) downstream EAS efficiency.  Expectation: fit
error shrinks with order and the order-6 scheduler is at least as good
as the crude fits.
"""

from repro.core.categories import all_categories
from repro.core.characterization import PowerCharacterizer
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import haswell_desktop
from repro.workloads.microbench import standard_microbenches

from benchmarks._ablation_common import mean_efficiency


def characterize(order):
    spec = haswell_desktop()
    characterizer = PowerCharacterizer(
        processor_factory=lambda: IntegratedProcessor(spec),
        microbenches=standard_microbenches(), fit_order=order)
    return characterizer.characterize()


def test_ablation_poly_order(benchmark):
    def run():
        results = {}
        for order in (1, 2, 4, 6):
            characterization = characterize(order)
            rms = max(characterization.curve_for(c).fit_residual_rms()
                      for c in all_categories())
            eff = mean_efficiency(characterization=characterization)
            results[order] = (rms, eff)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Fit quality improves monotonically with order.
    assert results[6][0] < results[2][0] < results[1][0]
    # The paper's order-6 choice does not lose to the crude fits.
    assert results[6][1] >= results[1][1] - 3.0
    assert results[6][1] > 85.0

    for order, (rms, eff) in results.items():
        benchmark.extra_info[f"order{order}"] = (
            f"rms={rms:.2f}W eff={eff:.1f}%")
        print(f"order {order}: worst-fit RMS {rms:6.2f} W, "
              f"EAS efficiency {eff:5.1f}%")
