"""Shared helpers for the ablation benchmarks.

Each ablation reruns EAS with one design knob changed and reports mean
Oracle-relative EDP efficiency over a representative workload subset
(one regular compute-bound, one short-kernel, one irregular
memory-bound) on the desktop.  Alpha sweeps are shared with the figure
benchmarks through :mod:`repro.harness.figures`' cache.
"""

from typing import Dict, Optional, Sequence

from repro.core.characterization import PlatformCharacterization
from repro.core.metrics import EDP, EnergyMetric
from repro.core.scheduler import SchedulerConfig, EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.figures import _cached_sweep
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

#: Representative subset: regular compute (NB), short-kernel regular
#: (BS), irregular memory-bound graph (CC).
ABLATION_WORKLOADS = ("NB", "BS", "CC")


def eas_efficiency(workload_abbrev: str,
                   characterization: Optional[PlatformCharacterization] = None,
                   config: Optional[SchedulerConfig] = None,
                   metric: EnergyMetric = EDP) -> float:
    """Oracle-relative efficiency (%) of one EAS configuration."""
    spec = haswell_desktop()
    workload = workload_by_abbrev(workload_abbrev)
    sweep = _cached_sweep(spec, workload, tablet=False)
    characterization = characterization or get_characterization(spec)
    scheduler = EnergyAwareScheduler(characterization, metric,
                                     config=config or SchedulerConfig())
    run = run_application(spec, workload, scheduler, "EAS")
    oracle = sweep.oracle(metric).metric_value(metric)
    return 100.0 * oracle / run.metric_value(metric)


def mean_efficiency(characterization=None, config=None,
                    workloads: Sequence[str] = ABLATION_WORKLOADS) -> float:
    values = [eas_efficiency(w, characterization, config) for w in workloads]
    return sum(values) / len(values)


def efficiency_table(variants: Dict[str, dict]) -> Dict[str, float]:
    """Evaluate named variants ({name: kwargs for mean_efficiency})."""
    return {name: mean_efficiency(**kwargs)
            for name, kwargs in variants.items()}
