"""Quickstart: schedule one kernel with the energy-aware runtime.

Builds the paper's pipeline end to end on the simulated desktop:

1. one-time platform power characterization (eight micro-benchmarks,
   sixth-order polynomial fits);
2. an application kernel described by a cost model;
3. EAS scheduling (online profiling -> classification -> alpha search)
   versus the CPU-only, GPU-only and best-performance baselines.

Run:  python examples/quickstart.py
"""

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
)
from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.soc.cost_model import KernelCostModel
from repro.soc.spec import haswell_desktop
from repro.workloads.base import InvocationSpec, Workload


class FeatureExtraction(Workload):
    """A user-defined workload: gather-heavy feature extraction over a
    large photo collection (random access into per-image descriptor
    tables - memory-latency-bound, the integrated GPU's latency hiding
    gives it a moderate edge)."""

    name = "Photo feature extraction"
    abbrev = "FX"
    regular = True
    input_desktop = "80M descriptors"

    def cost_model(self, tablet: bool = False) -> KernelCostModel:
        return KernelCostModel(
            name="feature-extract",
            instructions_per_item=150.0,
            loadstore_fraction=0.20,
            l3_miss_rate=0.36,            # dependent scattered gathers
            cpu_simd_efficiency=0.040,    # latency-bound effective IPC
            gpu_simd_efficiency=0.034,    # SIMT latency hiding
            gpu_divergence=0.30,
            gpu_traffic_factor=0.80,      # coalesced gathers
        )

    def invocations(self, tablet: bool = False):
        return [InvocationSpec(n_items=8.0e7)]

    def validate(self) -> None:  # pragma: no cover - example stub
        pass


def main() -> None:
    platform = haswell_desktop()
    workload = FeatureExtraction()

    print(heading(f"Quickstart on {platform.name}"))
    print("Characterizing platform power (one-time, cached)...")
    characterization = get_characterization(platform)

    rows = []
    schedulers = [
        ("CPU-only", CpuOnlyScheduler()),
        ("GPU-only", GpuOnlyScheduler()),
        ("PERF", ProfiledPerfScheduler()),
        ("EAS (EDP)", EnergyAwareScheduler(characterization, EDP)),
    ]
    for label, scheduler in schedulers:
        run = run_application(platform, workload, scheduler, label)
        rows.append((label,
                     f"{run.final_alpha:.2f}" if run.final_alpha is not None
                     else "-",
                     run.time_s, run.energy_j, run.metric_value(EDP)))

    print()
    print(format_table(
        ["strategy", "alpha", "time (s)", "energy (J)", "EDP (J*s)"], rows))
    best = min(rows, key=lambda r: r[4])
    eas_row = rows[-1]
    print(f"\nBest energy-delay product: {best[0]}")
    print(f"EAS reaches {100 * best[4] / eas_row[4]:.0f}% of the best "
          f"strategy's EDP from one profiling pass - no exhaustive "
          f"search, no vendor documentation.")
    worst = max(rows, key=lambda r: r[4])
    print(f"(Picking wrong would cost {worst[4] / best[4]:.1f}x: "
          f"{worst[0]} at {worst[4]:.0f} J*s.)")


if __name__ == "__main__":
    main()
