"""The Concord-style runtime layer executing *real* computation.

The evaluation runs on the simulated SoC, but the runtime layer is a
real work-stealing executor.  This example renders a Mandelbrot image
and multiplies matrices on host threads through the Chase-Lev deques,
verifying results against direct computation - the CPU side of the
paper's Concord runtime, minus the silicon.

Run:  python examples/real_workstealing.py
"""

import time

import numpy as np

from repro.harness.report import heading
from repro.runtime.workstealing import WorkStealingPool, coverage_is_complete
from repro.workloads.mandelbrot import render_escape_counts
from repro.workloads.matmul import blocked_matmul_rows
from repro.workloads.registry import workload_by_abbrev


def mandelbrot_via_pool() -> None:
    print(heading("Mandelbrot via the work-stealing pool"))
    workload = workload_by_abbrev("MB")
    kernel = workload.make_executable_kernel()
    width, height = 256, 192
    n = width * height

    pool = WorkStealingPool(num_workers=4, chunk=512)
    started = time.perf_counter()
    executed = pool.run(kernel.execute_cpu, 0, n)
    elapsed = time.perf_counter() - started
    assert coverage_is_complete(executed, 0, n)

    image = kernel.output.reshape(height, width)
    reference = render_escape_counts(width, height, 96)
    matches = bool(np.array_equal(image, reference))
    inside = (image == image.max()).mean()
    print(f"rendered {width}x{height} in {elapsed * 1000:.0f} ms on "
          f"4 workers across {len(executed)} stolen/popped chunks")
    print(f"matches direct rendering: {matches}; "
          f"{inside * 100:.1f}% of pixels inside the set")

    # A crude ASCII thumbnail, because why not.
    palette = " .:-=+*#%@"
    step_r, step_c = height // 16, width // 48
    for r in range(0, height, step_r):
        line = "".join(
            palette[min(int(image[r, c] / image.max() * 9), 9)]
            for c in range(0, width, step_c))
        print(line)


def matmul_via_pool() -> None:
    print()
    print(heading("Blocked matmul via the work-stealing pool"))
    rng = np.random.default_rng(123)
    n = 256
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    out = np.zeros((n, n))

    def body(lo: int, hi: int) -> None:
        out[lo:hi, :] = blocked_matmul_rows(a, b, lo, hi, block=64)

    pool = WorkStealingPool(num_workers=4, chunk=16)
    started = time.perf_counter()
    pool.run(body, 0, n)
    elapsed = time.perf_counter() - started
    error = float(np.abs(out - a @ b).max())
    print(f"{n}x{n} matmul in {elapsed * 1000:.0f} ms; "
          f"max abs error vs numpy: {error:.2e}")
    assert error < 1e-9


if __name__ == "__main__":
    mandelbrot_via_pool()
    matmul_via_pool()
