"""GPU contention and the A26 busy-fallback (Section 5).

The paper's runtime checks GPU performance counter A26 before each
invocation: "we test GPU performance counter A26 on both platforms to
check if it is busy.  In that case, we execute the application entirely
on the CPU."  This example shows the fallback firing two ways: first a synthetic
sketch (the N-Body workload while a hand-flipped busy flag stands in
for a co-resident compositor), then the real thing - two tenants
co-scheduled on one SoC through the GPU lease arbiter
(:mod:`repro.runtime.tenancy`), where every EXIT_GPU_BUSY decision is
a genuine lease denial naming the tenant that held the GPU.

Run:  python examples/gpu_contention.py
"""

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.runtime.runtime import ConcordRuntime
from repro.runtime.tenancy import parse_tenant_specs, run_multiprogram
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def run_with_contention(contended_every: int):
    """Run NB with every Nth invocation finding the GPU busy.

    ``contended_every=0`` disables contention.
    """
    platform = haswell_desktop()
    processor = IntegratedProcessor(platform)
    runtime = ConcordRuntime(processor)
    workload = workload_by_abbrev("NB")
    kernel = workload.make_kernel()
    scheduler = EnergyAwareScheduler(get_characterization(platform), EDP)

    fallbacks = 0
    t0 = processor.now
    msr0 = processor.read_energy_msr()
    for index, invocation in enumerate(workload.invocations()):
        if contended_every and index % contended_every == 0 and index > 0:
            # The co-resident process grabs the GPU right before our
            # launch; A26 reads busy.
            processor.counters.account_gpu_busy(True, 0.0)
        result = runtime.parallel_for(kernel, invocation.n_items, scheduler)
        if "gpu-busy-fallback" in result.notes:
            fallbacks += 1
    elapsed = processor.now - t0
    energy = processor.energy_joules_between(msr0,
                                             processor.read_energy_msr())
    return fallbacks, elapsed, energy


def main() -> None:
    print(heading("N-Body under intermittent GPU contention (desktop)"))
    rows = []
    for contended_every, label in ((0, "GPU always free"),
                                   (10, "every 10th launch contended"),
                                   (3, "every 3rd launch contended"),
                                   (2, "every 2nd launch contended")):
        fallbacks, elapsed, energy = run_with_contention(contended_every)
        rows.append((label, fallbacks, elapsed, energy,
                     energy * elapsed))
    print(format_table(
        ["scenario", "CPU fallbacks", "time (s)", "energy (J)",
         "EDP (J*s)"], rows))
    print(
        "\nEach contended launch runs entirely on the CPU (the paper's A26\n"
        "rule), so the application keeps making progress - at a cost that\n"
        "grows smoothly with the contention rate instead of stalling.")

    print()
    print(heading("The real thing: two tenants, one GPU lease arbiter"))
    result = run_multiprogram(tenants=parse_tenant_specs("BS,CC:5"),
                              policy="priority", seed=0)
    print(result.render())
    print(
        "\nHere nothing is synthetic: both tenants issue thousands of\n"
        "launches, the arbiter leases the GPU to one at a time, and each\n"
        "denial surfaces to the loser's scheduler as a busy A26 - the\n"
        "same Section-5 fallback, now driven by real co-running work.")


if __name__ == "__main__":
    main()
