"""Irregular graph workloads: real algorithms + energy-aware scheduling.

The paper's hardest customers are the road-network graph kernels: BFS,
Connected Components and Shortest Path launch thousands of small,
irregular kernels, and CC is the one workload where EAS's profiling
over-estimates the GPU (the paper's documented alpha=1.0-vs-0.9 miss).

This example:

1. runs the *real* algorithms on a generated road network and verifies
   them against each other;
2. schedules the paper-scale counterparts with EAS on the simulated
   desktop and reports the chosen offload ratios;
3. shows the CC effect: EAS's alpha versus the exhaustive Oracle's.

Run:  python examples/irregular_graphs.py
"""

import numpy as np

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization, sweep_alphas
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev
from repro.workloads.roadnet import (
    bfs_levels,
    connected_components_labels,
    generate_road_network,
    sssp_distances,
)


def real_algorithms() -> None:
    print(heading("Real graph algorithms on a generated road network"))
    graph = generate_road_network(80, 50, seed=11)
    print(f"graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} directed edges")

    level, frontiers = bfs_levels(graph, source=0)
    print(f"BFS:  {len(frontiers)} levels (= kernel launches), "
          f"largest frontier {max(frontiers)}")

    labels, rounds = connected_components_labels(graph)
    print(f"CC:   {len(rounds)} label-propagation rounds, "
          f"{len(set(labels.tolist()))} component(s)")

    dist, sp_rounds = sssp_distances(graph, source=0)
    print(f"SSSP: {len(sp_rounds)} relaxation rounds, "
          f"max distance {dist.max():.0f}")

    # Cross-checks between the algorithms.
    assert (dist[level == 1] <= graph.weights.max()).all()
    hop_vs_weight = dist / np.maximum(level, 1)
    print(f"mean edge-weight along shortest paths: "
          f"{hop_vs_weight[level > 0].mean():.2f} "
          f"(edge weights are 1..19)")


def scheduled_counterparts() -> None:
    print()
    print(heading("Scheduling the paper-scale graph workloads (simulated "
                  "desktop)"))
    platform = haswell_desktop()
    characterization = get_characterization(platform)

    rows = []
    for abbrev in ("BFS", "CC", "SP"):
        workload = workload_by_abbrev(abbrev)
        scheduler = EnergyAwareScheduler(characterization, EDP)
        run = run_application(platform, workload, scheduler, "EAS")
        sweep = sweep_alphas(platform, workload)
        oracle_alpha = sweep.oracle_alpha(EDP)
        oracle_value = sweep.oracle(EDP).metric_value(EDP)
        efficiency = 100.0 * oracle_value / run.metric_value(EDP)
        rows.append((abbrev, workload.num_invocations,
                     f"{run.final_alpha:.2f}", f"{oracle_alpha:.1f}",
                     efficiency))
    print(format_table(
        ["workload", "kernel launches", "EAS alpha", "Oracle alpha",
         "EDP efficiency %"], rows, float_digits=1))
    print(
        "\nIrregular graphs are the stress case: long-range cost structure\n"
        "makes the profiled prefix unrepresentative, so EAS can over- or\n"
        "under-offload relative to the Oracle (the paper documents exactly\n"
        "this miss on CC, where its EAS chose 1.0 against the Oracle's 0.9).")


if __name__ == "__main__":
    real_algorithms()
    scheduled_counterparts()
