"""Black-box characterization of a *new* platform.

The whole point of the paper's approach: when a new SKU arrives, no
vendor documentation is needed - run the eight micro-benchmarks once,
fit the curves, and the scheduler works.  This example defines a
fictional "ultrabook" SoC (between the desktop and the tablet), runs
the one-time characterization against it, prints the fitted polynomial
equations (the y-equations of Figs. 5-6), and schedules a workload.

Run:  python examples/characterize_custom_platform.py
"""

from repro.core.categories import all_categories
from repro.core.characterization import PowerCharacterizer
from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.report import heading
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import CpuSpec, GpuSpec, MemorySpec, PcuSpec, PlatformSpec
from repro.units import gb_per_s, ghz, ms
from repro.workloads.microbench import standard_microbenches
from repro.workloads.registry import workload_by_abbrev


def ultrabook() -> PlatformSpec:
    """A fictional 15 W-class SoC: 2 cores + 12 EUs."""
    return PlatformSpec(
        name="ultrabook-15w",
        cpu=CpuSpec(
            name="ultrabook-cpu", num_cores=2, smt_per_core=2,
            min_freq_hz=ghz(0.6), base_freq_hz=ghz(1.8),
            turbo_freq_hz=ghz(3.0), effective_ipc=4.0,
            mem_bw_bytes_per_s=gb_per_s(14.0),
            dyn_power_coeff_w=0.38, dyn_power_exponent=2.2,
            leakage_per_core_w=0.3, memory_stall_power_factor=0.9),
        gpu=GpuSpec(
            name="ultrabook-gpu", num_eus=12, threads_per_eu=7,
            simd_width=16, min_freq_hz=ghz(0.3), turbo_freq_hz=ghz(0.95),
            effective_ipc_per_eu=7.0, mem_bw_bytes_per_s=gb_per_s(12.0),
            dyn_power_coeff_w=9.0, dyn_power_exponent=1.9, leakage_w=0.6,
            memory_stall_power_factor=0.7,
            kernel_launch_overhead_s=ms(0.03)),
        memory=MemorySpec(
            shared_bw_bytes_per_s=gb_per_s(15.0),
            traffic_power_w_per_bps=0.3 / gb_per_s(1.0),
            uncore_static_w=1.0, llc_contention_factor=0.45),
        pcu=PcuSpec(
            sample_interval_s=ms(1.0), package_cap_w=15.0,
            cpu_coexec_freq_hz=ghz(2.2),
            cpu_gpu_activation_floor_hz=ghz(1.0),
            cpu_ramp_up_hz_per_s=ghz(1.0) / ms(1.0),
            cpu_recovery_ramp_hz_per_s=ghz(0.012) / ms(1.0),
            cpu_ramp_down_hz_per_s=ghz(1.0) / ms(1.0),
            gpu_ramp_hz_per_s=ghz(1.0) / ms(1.0),
            gpu_idle_release_s=ms(10.0), gpu_cold_threshold_s=0.3),
        idle_power_w=2.5,
        energy_unit_j=1.0 / (1 << 14),
        tick_s=ms(0.5),
        gpu_profile_size=12 * 7 * 16,  # match the hardware parallelism
    )


def main() -> None:
    platform = ultrabook()
    print(heading(f"One-time characterization of {platform.name}"))

    characterizer = PowerCharacterizer(
        processor_factory=lambda: IntegratedProcessor(platform),
        microbenches=standard_microbenches(), sweep_step=0.1)
    characterization = characterizer.characterize()

    for category in all_categories():
        curve = characterization.curve_for(category)
        print(f"[{category.short_code}] {curve.equation(digits=2)}")

    # The characterization is cacheable: ship it with the device image.
    cached_json = characterization.to_json()
    print(f"\n(cache size: {len(cached_json)} bytes of JSON)")

    workload = workload_by_abbrev("MM")
    scheduler = EnergyAwareScheduler(characterization, EDP)
    run = run_application(platform, workload, scheduler, "EAS")
    print(f"\nScheduled {workload.name} on the new platform: "
          f"alpha={run.final_alpha:.2f}, {run.time_s:.3f} s, "
          f"{run.energy_j:.2f} J "
          f"({run.average_power_w:.2f} W average package power)")


if __name__ == "__main__":
    main()
