"""Scheduling the same workload under different energy objectives.

The paper's scheduler optimizes "any user-defined energy-related metric
that can be expressed as a function of power consumption and program
execution time".  This example schedules the SkipList workload under:

* total energy (battery life),
* energy-delay product (balanced),
* ED^2 (performance-leaning HPC metric),
* a custom "battery + idle drain" objective,

and shows how the chosen GPU offload ratio shifts with the objective.

Run:  python examples/metric_comparison.py
"""

from repro.core.metrics import ED2, EDP, ENERGY, EnergyMetric
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def main() -> None:
    platform = haswell_desktop()
    workload = workload_by_abbrev("CC")
    characterization = get_characterization(platform)

    # A custom objective: while this job runs, the rest of the system
    # drains an extra 3 W (screen, radios) - so finishing sooner saves
    # that drain too.  Lower is better, like every metric here.
    battery = EnergyMetric(
        name="battery+3W",
        custom_fn=lambda power_w, time_s: (power_w + 3.0) * time_s)

    rows = []
    for metric in (ENERGY, EDP, ED2, battery):
        scheduler = EnergyAwareScheduler(characterization, metric)
        run = run_application(platform, workload, scheduler, metric.name)
        rows.append((metric.name, f"{run.final_alpha:.2f}",
                     run.time_s, run.energy_j,
                     metric.value(run.average_power_w, run.time_s)))

    print(heading(f"{workload.name} ({workload.input_desktop}) under four "
                  f"objectives"))
    print(format_table(
        ["objective", "alpha", "time (s)", "energy (J)", "objective value"],
        rows))
    print(
        "\nPerformance-leaning objectives (ED^2) pull alpha toward the\n"
        "performance-optimal split; energy-leaning ones pull it toward\n"
        "the power-efficient GPU - exactly the paper's Fig. 1 trade-off.")


if __name__ == "__main__":
    main()
